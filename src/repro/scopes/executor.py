"""Operational execution with workgroup placement and control barriers.

Extends the single-instance executor with the execution-hierarchy
semantics the paper defers to future work:

* threads are placed into workgroups (:class:`Placement`);
* ``workgroupBarrier()`` is a *rendezvous*: no thread in a workgroup
  passes its k-th barrier until every peer has arrived at theirs, and
  crossing it drains the participants' store buffers (all pre-barrier
  writes become visible);
* storage-scope barriers keep their core semantics (release ordering
  in the store buffer, no rendezvous across workgroups).

The implementation is deliberately *conservative*: a workgroup barrier
also makes the drained writes visible to other workgroups, which is
stronger than the scoped model requires.  That is sound (the test
suite checks every outcome against the scoped model's oracle) and
mirrors the real-world situation of Sec. 3.4 — implementations are
often stronger than their specification, which is exactly when mutant
pruning applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DeviceError, MalformedProgramError
from repro.gpu.bugs import BugSet, NO_BUGS
from repro.gpu.executor import Op, OpKind, reorder_pass
from repro.gpu.memory import CoherentMemory, StoreBuffer
from repro.gpu.profiles import ExecutionTuning
from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
)
from repro.litmus.outcomes import Outcome
from repro.litmus.program import LitmusTest
from repro.scopes.instructions import BarrierScope, ControlBarrier
from repro.scopes.placement import Placement


@dataclass
class ScopedOp:
    """A compiled op plus, for fences, its barrier scope."""

    op: Op
    barrier_scope: Optional[BarrierScope] = None


def compile_scoped(
    test: LitmusTest, bugs: BugSet = NO_BUGS
) -> List[List[ScopedOp]]:
    """Compile a (possibly barrier-scoped) test to per-thread streams."""
    threads: List[List[ScopedOp]] = []
    for thread in test.threads:
        ops: List[ScopedOp] = []
        for instruction in thread:
            if isinstance(instruction, AtomicLoad):
                ops.append(
                    ScopedOp(Op(OpKind.LOAD, instruction.location,
                                register=instruction.register))
                )
            elif isinstance(instruction, AtomicStore):
                ops.append(
                    ScopedOp(Op(OpKind.STORE, instruction.location,
                                value=instruction.value))
                )
            elif isinstance(instruction, AtomicExchange):
                ops.append(
                    ScopedOp(Op(OpKind.RMW, instruction.location,
                                value=instruction.value,
                                register=instruction.register))
                )
            elif isinstance(instruction, ControlBarrier):
                ops.append(
                    ScopedOp(Op(OpKind.FENCE),
                             barrier_scope=instruction.scope)
                )
            elif isinstance(instruction, Fence):
                if not bugs.drops_fences:
                    ops.append(
                        ScopedOp(Op(OpKind.FENCE),
                                 barrier_scope=BarrierScope.STORAGE)
                    )
            else:
                raise DeviceError(
                    f"cannot compile instruction {instruction!r}"
                )
        threads.append(ops)
    return threads


def _validate_uniform_barriers(
    streams: Sequence[Sequence[ScopedOp]], placement: Placement
) -> None:
    """Workgroup barriers must be uniform within each workgroup, or the
    rendezvous deadlocks (WGSL makes non-uniform barriers an error)."""
    counts: Dict[int, set] = {}
    for thread, stream in enumerate(streams):
        barrier_count = sum(
            1
            for scoped in stream
            if scoped.barrier_scope is BarrierScope.WORKGROUP
        )
        group = placement.workgroup_of(thread)
        counts.setdefault(group, set()).add(barrier_count)
    for group, observed in counts.items():
        if len(observed) > 1:
            raise MalformedProgramError(
                f"non-uniform workgroupBarrier count in workgroup "
                f"{group}: {sorted(observed)}"
            )


class ScopedExecutor:
    """Runs one scoped test instance under a placement."""

    def __init__(
        self,
        test: LitmusTest,
        placement: Placement,
        tuning: ExecutionTuning,
        rng: np.random.Generator,
        bugs: BugSet = NO_BUGS,
    ) -> None:
        if placement.thread_count != test.thread_count:
            raise MalformedProgramError(
                f"placement covers {placement.thread_count} threads, "
                f"test has {test.thread_count}"
            )
        self.test = test
        self.placement = placement
        self.tuning = tuning
        self.rng = rng
        self.bugs = bugs
        self.memory = CoherentMemory()
        self.buffers = [
            StoreBuffer(index) for index in range(test.thread_count)
        ]
        self.registers: Dict[str, int] = {}

    # -- compilation with the reorder pass ------------------------------

    def _compiled(self) -> List[List[ScopedOp]]:
        streams = compile_scoped(self.test, self.bugs)
        _validate_uniform_barriers(streams, self.placement)
        # Reuse the core reorder pass: it never moves anything across a
        # FENCE op, so barrier positions (and their scopes) are stable.
        bare = [[scoped.op for scoped in stream] for stream in streams]
        reordered = reorder_pass(bare, self.tuning, self.rng, self.bugs)
        result: List[List[ScopedOp]] = []
        for stream, ops in zip(streams, reordered):
            scopes = [
                scoped.barrier_scope
                for scoped in stream
                if scoped.op.kind is OpKind.FENCE
            ]
            fence_index = 0
            rebuilt: List[ScopedOp] = []
            for op in ops:
                if op.kind is OpKind.FENCE:
                    rebuilt.append(ScopedOp(op, scopes[fence_index]))
                    fence_index += 1
                else:
                    rebuilt.append(ScopedOp(op))
            result.append(rebuilt)
        return result

    # -- the rendezvous-aware interleaving loop ---------------------------

    def run(self) -> Outcome:
        streams = self._compiled()
        cursors = [0] * len(streams)
        barriers_passed = [0] * len(streams)

        def next_op(thread: int) -> Optional[ScopedOp]:
            if cursors[thread] >= len(streams[thread]):
                return None
            return streams[thread][cursors[thread]]

        def at_workgroup_barrier(thread: int) -> bool:
            scoped = next_op(thread)
            return (
                scoped is not None
                and scoped.barrier_scope is BarrierScope.WORKGROUP
            )

        def barrier_ready(thread: int) -> bool:
            k = barriers_passed[thread]
            for peer in self.placement.peers(thread):
                if barriers_passed[peer] != k or not at_workgroup_barrier(
                    peer
                ):
                    return False
            return True

        def release_workgroup(thread: int) -> None:
            # All peers cross together: drain their buffers (visibility)
            # and advance them past the barrier op.
            for peer in self.placement.peers(thread):
                self.buffers[peer].flush_all(self.memory)
                cursors[peer] += 1
                barriers_passed[peer] += 1

        while True:
            runnable = []
            blocked = []
            for thread in range(len(streams)):
                if next_op(thread) is None:
                    continue
                if at_workgroup_barrier(thread) and not barrier_ready(
                    thread
                ):
                    blocked.append(thread)
                else:
                    runnable.append(thread)
            if not runnable:
                if blocked:
                    raise MalformedProgramError(
                        "workgroup barrier deadlock (non-uniform "
                        "control flow)"
                    )
                break
            thread = int(self.rng.choice(runnable))
            chunk = self._chunk_size()
            for _ in range(chunk):
                scoped = next_op(thread)
                if scoped is None:
                    break
                if scoped.barrier_scope is BarrierScope.WORKGROUP:
                    if barrier_ready(thread):
                        release_workgroup(thread)
                    break  # rendezvous ends the slot either way
                self._execute(thread, scoped)
                cursors[thread] += 1
            self._flush_step()
        order = list(range(len(self.buffers)))
        self.rng.shuffle(order)
        for index in order:
            self.buffers[index].flush_all(self.memory)
        return self._outcome()

    def _chunk_size(self) -> int:
        mean = self.tuning.chunk_mean
        if mean <= 1.0:
            return 1
        return int(self.rng.geometric(1.0 / mean))

    def _flush_step(self) -> None:
        for buffer in self.buffers:
            if not buffer.empty:
                buffer.flush_random(
                    self.memory, self.rng, self.tuning.flush_probability
                )

    def _execute(self, thread: int, scoped: ScopedOp) -> None:
        op = scoped.op
        buffer = self.buffers[thread]
        if op.kind is OpKind.STORE:
            assert op.location is not None and op.value is not None
            buffer.push(op.location, op.value)
        elif op.kind is OpKind.FENCE:
            # Storage-scope barrier: release ordering, no rendezvous.
            buffer.push_barrier()
        elif op.kind is OpKind.LOAD:
            assert op.location is not None and op.register is not None
            forwarded = buffer.newest_pending(op.location)
            if forwarded is not None:
                self.registers[op.register] = forwarded
                return
            stale = self.bugs.stale_read_probability(self.tuning)
            if stale > 0.0 and self.rng.random() < stale:
                self.registers[op.register] = self.memory.read_stale(
                    op.location, self.rng, self.bugs.stale_depth()
                )
                return
            self.registers[op.register] = self.memory.read_current(
                op.location
            )
        elif op.kind is OpKind.RMW:
            assert op.location is not None
            assert op.value is not None and op.register is not None
            buffer.flush_for_rmw(op.location, self.memory)
            old = self.memory.read_current(op.location)
            self.memory.commit(op.location, op.value, thread)
            self.registers[op.register] = old
        else:  # pragma: no cover - exhaustive enum
            raise DeviceError(f"unknown op kind {op.kind}")

    def _outcome(self) -> Outcome:
        finals = {
            location: self.memory.read_current(location)
            for location in self.test.locations
        }
        reads = {
            register: self.registers.get(register, 0)
            for register in self.test.registers
        }
        return Outcome(reads=reads, finals=finals)


def run_scoped_instance(
    test: LitmusTest,
    placement: Placement,
    tuning: ExecutionTuning,
    rng: np.random.Generator,
    bugs: BugSet = NO_BUGS,
) -> Outcome:
    """Convenience wrapper: one scoped instance, one outcome."""
    return ScopedExecutor(test, placement, tuning, rng, bugs).run()
