"""Fair-share scheduling of shard slots across tenants and jobs.

The service's unit of dispatch is a *shard* (a batch of work units of
one job).  Whenever a pool slot frees up, the runtime asks this
scheduler which job gets it.  The answer implements two policies:

* **Across tenants** — smooth weighted round-robin (the nginx
  algorithm): each eligible tenant accumulates credit proportional to
  its weight and the richest tenant is served, so a weight-3 tenant
  gets 3 of every 4 slots against a weight-1 tenant, interleaved
  rather than bursty, and no tenant with runnable work ever starves.
* **Within a tenant** — plain round-robin over that tenant's runnable
  jobs, so two jobs from one tenant make interleaved progress.

Per-tenant quotas cap in-flight shards (``max_active``): a tenant at
its cap is simply ineligible until a slot releases, leaving its
capacity to others.  The scheduler is pure bookkeeping — no clocks,
no I/O — so its behaviour is exactly testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple


@dataclass(frozen=True)
class TenantQuota:
    """Scheduling policy for one tenant."""

    #: Relative share of shard slots (smooth WRR credit per round).
    weight: int = 1
    #: In-flight shard cap; ``None`` means unlimited.
    max_active: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("tenant weight must be >= 1")
        if self.max_active is not None and self.max_active < 1:
            raise ValueError("max_active must be >= 1 (or None)")


class FairShareScheduler:
    """Weighted round-robin over (tenant, job) shard dispatch."""

    def __init__(
        self, default_quota: Optional[TenantQuota] = None
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = {}
        self._runnable: Dict[str, Deque[str]] = {}
        self._active: Dict[str, int] = {}
        self._credit: Dict[str, float] = {}

    # -- configuration -----------------------------------------------------

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    # -- membership --------------------------------------------------------

    def add_job(self, tenant: str, job_id: str) -> None:
        """Mark a job runnable (it has pending units to dispatch)."""
        jobs = self._runnable.setdefault(tenant, deque())
        if job_id not in jobs:
            jobs.append(job_id)

    def remove_job(self, tenant: str, job_id: str) -> None:
        """A job stopped being runnable (drained, finished, cancelled)."""
        jobs = self._runnable.get(tenant)
        if jobs is None:
            return
        try:
            jobs.remove(job_id)
        except ValueError:
            pass
        if not jobs:
            self._runnable.pop(tenant, None)
            self._credit.pop(tenant, None)

    def has_runnable(self) -> bool:
        return any(self._runnable.values())

    def active(self, tenant: str) -> int:
        return self._active.get(tenant, 0)

    # -- dispatch ----------------------------------------------------------

    def _eligible(self) -> Dict[str, TenantQuota]:
        eligible = {}
        for tenant, jobs in self._runnable.items():
            if not jobs:
                continue
            quota = self.quota(tenant)
            if (
                quota.max_active is not None
                and self.active(tenant) >= quota.max_active
            ):
                continue
            eligible[tenant] = quota
        return eligible

    def acquire(self) -> Optional[Tuple[str, str]]:
        """Pick (tenant, job_id) for the next free shard slot.

        ``None`` means nothing is dispatchable right now (no runnable
        jobs, or every tenant with work is at its quota).  The caller
        must pair every acquire with a :meth:`release` when the shard
        finishes.
        """
        eligible = self._eligible()
        if not eligible:
            return None
        total_weight = sum(q.weight for q in eligible.values())
        best: Optional[str] = None
        for tenant in sorted(eligible):  # sorted => deterministic ties
            credit = self._credit.get(tenant, 0.0) + eligible[tenant].weight
            self._credit[tenant] = credit
            if best is None or credit > self._credit[best]:
                best = tenant
        assert best is not None
        self._credit[best] -= total_weight
        jobs = self._runnable[best]
        job_id = jobs[0]
        jobs.rotate(-1)  # round-robin within the tenant
        self._active[best] = self.active(best) + 1
        return best, job_id

    def release(self, tenant: str) -> None:
        """A shard of this tenant finished; its slot is free again."""
        remaining = self.active(tenant) - 1
        if remaining > 0:
            self._active[tenant] = remaining
        else:
            self._active.pop(tenant, None)
