"""A thin synchronous client for the campaign service.

Built on :mod:`http.client` only, so the CLI's thin-client mode
(``repro service submit|status|watch|cancel``) adds no dependencies.
Each call opens one connection (the server speaks ``Connection:
close``); :meth:`watch` holds a single long-lived connection and
yields parsed SSE events until the job's terminal event.

Endpoint discovery: pass ``base_url`` explicitly, or pass the service
``root`` and the client reads the daemon's ``service.json`` file.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union
from urllib.parse import urlencode, urlsplit

from repro.service.jobstore import JobState, ServiceError
from repro.service.server import endpoint_path

#: Generous per-socket timeout: SSE streams idle between shards.
DEFAULT_TIMEOUT = 300.0


class ServiceClientError(ServiceError):
    """The daemon is unreachable or rejected the request."""


def discover_url(root: Union[str, Path]) -> str:
    """The daemon URL recorded in ``<root>/service.json``."""
    path = endpoint_path(root)
    if not path.exists():
        raise ServiceClientError(
            f"no service endpoint file at {path}; is the daemon "
            f"running? (start one with: repro service start)"
        )
    try:
        payload = json.loads(path.read_text())
        return payload["url"]
    except (json.JSONDecodeError, KeyError) as error:
        raise ServiceClientError(
            f"corrupt endpoint file {path}: {error}"
        )


class ServiceClient:
    """One campaign-service endpoint, as Python methods."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        root: Optional[Union[str, Path]] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if base_url is None:
            if root is None:
                raise ServiceClientError(
                    "ServiceClient needs a base_url or a service root"
                )
            base_url = discover_url(root)
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ServiceClientError(
                f"unsupported service URL: {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (ConnectionError, OSError) as error:
            raise ServiceClientError(
                f"cannot reach service at "
                f"http://{self.host}:{self.port}: {error}"
            )
        finally:
            connection.close()
        text = raw.decode("utf-8", "replace")
        if response.status >= 400:
            message = text.strip()
            try:
                message = json.loads(text)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
            raise ServiceClientError(
                f"{method} {path} -> {response.status}: {message}"
            )
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return json.loads(text)
        return text

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self, spec_payload: Dict[str, Any], tenant: str = "default"
    ) -> Dict[str, Any]:
        return self._request(
            "POST", "/jobs", {"spec": spec_payload, "tenant": tenant}
        )

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def history(
        self,
        fingerprint: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run-ledger records, oldest first."""
        params = {
            "fingerprint": fingerprint,
            "kind": kind,
            "limit": limit,
        }
        query = urlencode(
            {k: v for k, v in params.items() if v is not None}
        )
        path = "/history" + (f"?{query}" if query else "")
        return self._request("GET", path)["runs"]

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def metrics_jsonl_text(self) -> str:
        return self._request("GET", "/metrics.jsonl")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    # -- streaming ---------------------------------------------------------

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's SSE events until its stream ends.

        The first event is the cumulative ``snapshot``; later
        ``progress`` events carry per-shard metric deltas (fold them
        onto the snapshot to track exact totals); the stream ends
        after the terminal event.
        """
        connection = self._connection()
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8", "replace")
                try:
                    raw = json.loads(raw)["error"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    pass
                raise ServiceClientError(
                    f"watch {job_id} -> {response.status}: {raw}"
                )
            data_lines: List[str] = []
            while True:
                line = response.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace").rstrip("\r\n")
                if text.startswith("data:"):
                    data_lines.append(text[5:].lstrip())
                elif not text and data_lines:
                    event = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield event
                    if event.get("event") in JobState.TERMINAL:
                        return
        except (ConnectionError, OSError) as error:
            raise ServiceClientError(
                f"event stream for {job_id} broke: {error}"
            )
        finally:
            connection.close()

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the job is terminal; return its final event."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        last: Optional[Dict[str, Any]] = None
        for event in self.watch(job_id):
            last = event
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceClientError(
                    f"timed out waiting for job {job_id}"
                )
        if last is None:
            raise ServiceClientError(
                f"event stream for {job_id} ended without events"
            )
        return last
