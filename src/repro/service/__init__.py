"""Campaign-as-a-service: a daemon multiplexing jobs over one pool.

The :mod:`repro.campaign` layer runs one spec per process invocation.
This package turns that into a long-lived service: submit many
:class:`~repro.campaign.spec.CampaignSpec` jobs over HTTP, share one
persistent worker pool between them with per-tenant fair-share
scheduling, stream live telemetry per job (SSE), and survive daemon
crashes — every job directory is a standard campaign journal, so a
restart is just kill+resume applied to each non-terminal job.

Layers, bottom up:

* :mod:`repro.service.jobstore` — jobs as directories (envelope +
  journal), atomic state transitions, crash recovery.
* :mod:`repro.service.fairshare` — weighted round-robin shard
  dispatch across tenants with quotas.
* :mod:`repro.service.runtime` — the asyncio daemon core: dispatch
  loop, shared executor, per-job registries, SSE publication.
* :mod:`repro.service.server` — stdlib HTTP/1.1 + SSE front end.
* :mod:`repro.service.client` — the synchronous thin client the CLI
  uses.
"""

from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    discover_url,
)
from repro.service.fairshare import FairShareScheduler, TenantQuota
from repro.service.jobstore import (
    JobRecord,
    JobState,
    JobStore,
    ServiceError,
)
from repro.service.runtime import (
    ActiveJob,
    CampaignService,
    ServiceConfig,
)
from repro.service.server import ServiceServer, run_service, serve

__all__ = [
    "ActiveJob",
    "CampaignService",
    "FairShareScheduler",
    "JobRecord",
    "JobState",
    "JobStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "TenantQuota",
    "discover_url",
    "run_service",
    "serve",
]
