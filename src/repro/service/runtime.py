"""The campaign service runtime: many jobs, one shared worker pool.

Where :class:`~repro.campaign.scheduler.CampaignScheduler` drives one
spec to completion and tears its pool down, the service keeps a single
persistent pool alive and multiplexes *shards of many jobs* over it.
The event loop owns all bookkeeping (journals, metrics, fair-share
state); worker processes only ever see ``(spec payload, unit indices)``
and return picklable shard results, so every mutation of job state is
single-threaded and an unclean death can only lose in-flight shards —
which the journal-based resume path re-executes deterministically.

Telemetry: every shard returns the worker's drained
:class:`~repro.obs.registry.MetricsRegistry` delta.  The same delta is
(1) merged into the job's registry (exact per-job totals), (2) merged
into the service registry with ``tenant``/``job`` labels (exact
service-wide totals, served at ``/metrics``), and (3) published to the
job's SSE subscribers as the wire format — so a client that folds the
stream's snapshots ends up with byte-identical totals to the job's
final registry.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Set, Union

from repro.analysis import save_result
from repro.analysis.serialize import run_from_dict
from repro.backends import resolve
from repro.campaign.journal import CampaignJournal
from repro.campaign.metrics import publish_store_events
from repro.campaign.scheduler import assemble_results
from repro.campaign.spec import CampaignError, CampaignSpec, WorkUnit
from repro.campaign.worker import (
    ShardResult,
    execute_shard_for,
    initialize_service_worker,
)
from repro.obs.health import (
    HealthMonitor,
    expected_rate_from_baseline,
    expected_units_from_baseline,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import (
    KIND_SERVICE,
    Ledger,
    record_from_results,
)
from repro.store import ResultStore, unit_digests
from repro.service.fairshare import FairShareScheduler, TenantQuota
from repro.service.jobstore import (
    JobRecord,
    JobState,
    JobStore,
    ServiceError,
)

#: Service-layer metric families (``/metrics``).
JOBS_METRIC = "repro_service_jobs_total"
SHARD_SECONDS_METRIC = "repro_service_shard_seconds"
JOB_SECONDS_METRIC = "repro_service_job_seconds"
HTTP_METRIC = "repro_service_http_requests_total"
RUNNING_GAUGE = "repro_service_jobs_running"
QUEUED_GAUGE = "repro_service_jobs_queued"

#: SSE event types that end a job's stream.
TERMINAL_EVENTS = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service instance."""

    #: Service root; holds ``jobs/`` and the ``service.json`` endpoint file.
    root: Union[str, Path]
    host: str = "127.0.0.1"
    #: 0 = pick a free port (the bound port lands in ``service.json``).
    port: int = 0
    #: Pool width == maximum in-flight shards across all jobs.
    workers: int = 2
    #: Units per dispatched shard; small keeps jobs finely interleaved.
    shard_size: int = 16
    unit_timeout: Optional[float] = 30.0
    max_retries: int = 2
    #: ``process`` (default) or ``thread`` (in-process pool: no fork
    #: cost, GIL-bound; used by tests and tiny deployments).
    pool_mode: str = "process"
    default_quota: TenantQuota = TenantQuota()
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: When set, submissions that ask for a store (``store_policy !=
    #: "off"``) but name no path get ``<store_root>/<tenant>`` — one
    #: persistent result store per tenant, shared by all their jobs.
    store_root: Optional[Union[str, Path]] = None
    #: Run-ledger directory.  Defaults to ``<root>/ledger``; every
    #: DONE job appends a normalized run record there, and the same
    #: ledger seeds each job's live :class:`HealthMonitor` baselines.
    ledger: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("service workers must be >= 1")
        if self.shard_size < 1:
            raise ServiceError("shard_size must be >= 1")
        if self.pool_mode not in ("process", "thread"):
            raise ServiceError(
                f"unknown pool_mode: {self.pool_mode!r} "
                f"(want 'process' or 'thread')"
            )


@dataclass
class ActiveJob:
    """In-memory state of one non-terminal job."""

    record: JobRecord
    journal: CampaignJournal
    units: List[WorkUnit]
    pending: Deque[int]
    spec_payload: Dict[str, Any]
    done: int = 0
    resumed: int = 0
    #: Units satisfied from the persistent result store (a subset of
    #: ``done``); includes attempts==0 records recovered from the
    #: journal after a restart.
    cached: int = 0
    inflight: int = 0
    cancelled: bool = False
    finalizing: bool = False
    seq: int = 0
    started_monotonic: float = field(default_factory=time.monotonic)
    pool_failures: int = 0
    attempts: Dict[int, int] = field(default_factory=dict)
    failed: Dict[int, str] = field(default_factory=dict)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    store: Optional[ResultStore] = None
    digests: Dict[int, str] = field(default_factory=dict)
    backend_name: str = ""
    backend_version: int = 1
    health: HealthMonitor = field(default_factory=HealthMonitor)
    subscribers: List["asyncio.Queue[Optional[Dict[str, Any]]]"] = field(
        default_factory=list
    )

    @property
    def job_id(self) -> str:
        return self.record.job_id

    @property
    def tenant(self) -> str:
        return self.record.tenant

    @property
    def total(self) -> int:
        return len(self.units)

    @property
    def drained(self) -> bool:
        return not self.pending and self.inflight == 0


def _relabel(
    payload: Dict[str, Any], extra: Dict[str, str]
) -> Dict[str, Any]:
    """A snapshot payload with extra labels on every entry."""
    out: Dict[str, Any] = {"schema": payload.get("schema", 1)}
    for kind in ("counters", "gauges", "histograms"):
        out[kind] = [
            {**entry, "labels": {**entry.get("labels", {}), **extra}}
            for entry in payload.get(kind, ())
        ]
    return out


class CampaignService:
    """The daemon core: job store + fair-share dispatch + shared pool."""

    def __init__(
        self,
        config: ServiceConfig,
        log: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.log = log or (lambda message: None)
        self.store = JobStore(config.root)
        self.fairshare = FairShareScheduler(config.default_quota)
        for tenant, quota in config.quotas.items():
            self.fairshare.set_quota(tenant, quota)
        self.registry = MetricsRegistry()
        self.ledger = Ledger(
            Path(config.ledger)
            if config.ledger is not None
            else Path(config.root) / "ledger"
        )
        self.jobs: Dict[str, ActiveJob] = {}
        self.started_utc = time.time()
        self._executor: Optional[Executor] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._shard_tasks: Set["asyncio.Task[None]"] = set()
        self._wake: Optional[asyncio.Event] = None
        self._inflight = 0
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Recover persisted jobs and start dispatching."""
        self._wake = asyncio.Event()
        self._executor = self._make_executor()
        recovered = self.store.recover()
        for record in recovered:
            self._count_job_event("recovered")
            self._activate(record)
        if recovered:
            self.log(
                f"[service] recovered {len(recovered)} job(s) from "
                f"{self.store.root}"
            )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _make_executor(self) -> Executor:
        if self.config.pool_mode == "thread":
            return ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-service",
            )
        try:
            # spawn, not fork: forked workers would inherit dups of
            # live client sockets (the pool grows lazily, i.e. while
            # SSE connections exist), keeping them open after the
            # server closes its end.
            return ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=initialize_service_worker,
                initargs=(None,),
            )
        except Exception as error:  # no fork/semaphores: degrade
            self.log(
                f"[service] process pool unavailable ({error}); "
                f"falling back to a thread pool"
            )
            return ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-service",
            )

    async def stop(self, drain: bool = False) -> None:
        """Stop dispatching and shut the pool down.

        ``drain=True`` first waits for every active job to finish;
        ``drain=False`` abandons pending work where it stands — the
        journals keep everything already completed, so a later
        :meth:`start` (or a fresh process) resumes exactly there.
        """
        if drain:
            while any(
                not job.record.terminal for job in self.jobs.values()
            ):
                await asyncio.sleep(0.02)
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._shard_tasks:
            await asyncio.gather(
                *self._shard_tasks, return_exceptions=True
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for job in self.jobs.values():
            if not job.record.terminal:
                job.journal.close()
                job.journal.release_lock()

    # -- submission / activation -------------------------------------------

    async def submit(
        self, spec_payload: Dict[str, Any], tenant: str = "default"
    ) -> JobRecord:
        """Validate, persist, and enqueue one campaign submission."""
        if self._stopping:
            raise ServiceError("service is shutting down")
        spec = CampaignSpec.from_dict(spec_payload)
        if (
            self.config.store_root is not None
            and spec.store_policy != "off"
            and spec.store_path is None
        ):
            # Safe to rewrite: store knobs are execution fields outside
            # the grid fingerprint, so the persisted job is still the
            # campaign the client submitted.
            spec = replace(
                spec,
                store_path=str(Path(self.config.store_root) / tenant),
            )
        record = self.store.submit(spec, tenant)
        self._count_job_event("submitted")
        self._activate(record)
        self.log(
            f"[service] job {record.job_id} submitted by {tenant!r}: "
            f"{spec.unit_count()} units"
        )
        if self._wake is not None:
            self._wake.set()
        return record

    def _activate(self, record: JobRecord) -> ActiveJob:
        journal = self.store.journal(record.job_id)
        journal.acquire_lock()
        units = record.spec.units()
        records = journal.load_records()
        done_keys = {rec.key for rec in records}
        pending: Deque[int] = deque(
            unit.index for unit in units if unit.key not in done_keys
        )
        job = ActiveJob(
            record=record,
            journal=journal,
            units=units,
            pending=pending,
            spec_payload=record.spec.to_dict(),
            done=len(done_keys),
            resumed=len(done_keys),
            cached=sum(1 for rec in records if rec.attempts == 0),
        )
        job.health = self._make_health(job)
        spec = record.spec
        if spec.store_path is not None and spec.store_policy != "off":
            job.store = ResultStore(spec.store_path)
            job.digests = unit_digests(spec)
            backend_class = resolve(spec.backend)
            job.backend_name = backend_class.name
            job.backend_version = backend_class.version
            publish_store_events(job.registry, {}, materialize=True)
            if spec.store_policy == "reuse" and job.pending:
                self._load_from_store(job)
        self.jobs[record.job_id] = job
        self._publish(job, "queued")
        if job.pending:
            self.fairshare.add_job(record.tenant, record.job_id)
        else:
            # Fully journaled already (killed after the last append,
            # or every unit came out of the result store): nothing to
            # run, straight to finalization.
            asyncio.get_running_loop().create_task(self._finalize(job))
        return job

    def _make_health(self, job: ActiveJob) -> HealthMonitor:
        """A ledger-seeded live monitor whose flags reach subscribers.

        Baselines come from previous DONE runs of the same grid
        fingerprint (any kind: a `campaign run` of the same spec is
        just as valid a baseline as an earlier service job).  Flags
        are published to the job's SSE stream as ``health`` events.
        """
        expected = None
        expected_units = None
        try:
            baselines = self.ledger.baseline(
                job.record.spec.fingerprint(),
                window=10,
                before_utc=float("inf"),
            )
            expected = expected_rate_from_baseline(baselines)
            expected_units = expected_units_from_baseline(baselines)
        except Exception as error:
            self.log(
                f"[service] job {job.job_id}: unreadable ledger "
                f"baseline ({error}); health drift check disabled"
            )
        return HealthMonitor(
            expected_kill_rate=expected,
            expected_units=expected_units,
            emit=lambda event: self._publish(
                job, "health", health=event
            ),
        )

    def _load_from_store(self, job: ActiveJob) -> None:
        """Drain store hits from a job's pending queue before dispatch.

        Mirrors the scheduler's partition: hits are journaled with
        ``attempts=0`` (the store-loaded marker), so restart recovery
        and stats assembly treat them exactly like executed units.
        """
        assert job.store is not None
        still_pending: Deque[int] = deque()
        hits = 0
        for index in job.pending:
            cached = job.store.get(job.digests[index])
            if cached is None:
                still_pending.append(index)
                continue
            _, run = cached
            job.journal.append(job.units[index], run, 0.0, 0)
            job.done += 1
            job.cached += 1
            hits += 1
        job.pending = still_pending
        self._publish_store_delta(job, job.store.drain_events())
        if hits:
            self.log(
                f"[service] job {job.job_id}: {hits} unit(s) loaded "
                f"from the result store"
            )

    def _publish_store_delta(
        self, job: ActiveJob, events: Dict[Any, int]
    ) -> None:
        """Fold drained store counters into job + service registries."""
        if not events:
            return
        delta = MetricsRegistry()
        publish_store_events(delta, events, materialize=False)
        payload = delta.drain()
        job.registry.merge(payload)
        self.registry.merge(
            _relabel(payload, {"tenant": job.tenant, "job": job.job_id})
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            self._wake.clear()
            self._fill_slots()
            await self._wake.wait()

    def _fill_slots(self) -> None:
        while self._inflight < self.config.workers:
            picked = self.fairshare.acquire()
            if picked is None:
                return
            tenant, job_id = picked
            job = self.jobs[job_id]
            take = min(self.config.shard_size, len(job.pending))
            indices = [job.pending.popleft() for _ in range(take)]
            if not job.pending:
                self.fairshare.remove_job(tenant, job_id)
            if not indices:
                self.fairshare.release(tenant)
                continue
            if job.record.state == JobState.QUEUED:
                job.record = self.store.transition(
                    job.record,
                    JobState.RUNNING,
                    started_utc=time.time(),
                )
                self._publish(job, "started")
            self._inflight += 1
            job.inflight += 1
            task = asyncio.get_running_loop().create_task(
                self._run_shard(job, indices)
            )
            self._shard_tasks.add(task)
            task.add_done_callback(self._shard_tasks.discard)

    async def _run_shard(
        self, job: ActiveJob, indices: List[int]
    ) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        result: Optional[ShardResult] = None
        error: Optional[BaseException] = None
        try:
            result = await loop.run_in_executor(
                self._executor,
                execute_shard_for,
                job.spec_payload,
                indices,
                self.config.unit_timeout,
            )
        except asyncio.CancelledError as exc:
            error = exc
        except Exception as exc:
            error = exc
        self._inflight -= 1
        job.inflight -= 1
        self.fairshare.release(job.tenant)
        if result is not None:
            job.pool_failures = 0
            self._absorb_shard(job, result)
            self.registry.histogram(
                SHARD_SECONDS_METRIC, {"tenant": job.tenant}
            ).observe(time.perf_counter() - started)
        elif not self._stopping and not job.cancelled:
            # The pool (not a unit) failed.  Requeue the shard whole a
            # bounded number of times — a persistently broken pool
            # must fail the job, not spin forever.
            job.pool_failures += 1
            if job.pool_failures <= 1 + self.config.max_retries:
                self.log(
                    f"[service] shard of {job.job_id} lost to pool "
                    f"failure ({error}); requeueing {len(indices)} "
                    f"units"
                )
                job.pending.extendleft(reversed(indices))
                self.fairshare.add_job(job.tenant, job.job_id)
            else:
                for index in indices:
                    job.failed[index] = f"worker pool failure: {error}"
                self.log(
                    f"[service] job {job.job_id}: pool failed "
                    f"{job.pool_failures} times; giving up on "
                    f"{len(indices)} units"
                )
            if isinstance(error, BrokenExecutor):
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = self._make_executor()
        if job.drained and not job.record.terminal:
            await self._finalize(job)
        if self._wake is not None:
            self._wake.set()

    def _absorb_shard(self, job: ActiveJob, result: ShardResult) -> None:
        retries: List[int] = []
        for outcome in result.outcomes:
            attempts = job.attempts.get(outcome.index, 0) + 1
            job.attempts[outcome.index] = attempts
            if outcome.ok:
                unit = job.units[outcome.index]
                run = run_from_dict(outcome.run)
                job.journal.append(
                    unit, run, outcome.elapsed, attempts
                )
                job.done += 1
                job.health.observe_unit(
                    outcome.elapsed,
                    worker=outcome.worker_id,
                    unit=outcome.index,
                )
                job.health.observe_kills(
                    run.kills,
                    run.iterations * run.instances_per_iteration,
                    unit=outcome.index,
                )
                if job.store is not None:
                    job.store.put(
                        job.digests[outcome.index],
                        unit.kind,
                        run,
                        job.backend_name,
                        job.backend_version,
                    )
            elif job.cancelled:
                continue
            elif attempts <= self.config.max_retries:
                retries.append(outcome.index)
            else:
                job.failed[outcome.index] = (
                    outcome.error or "unknown error"
                )
        if retries and not job.cancelled:
            job.pending.extend(retries)
            self.fairshare.add_job(job.tenant, job.job_id)
        if job.store is not None:
            self._publish_store_delta(job, job.store.drain_events())
        delta = result.metrics
        if delta:
            job.registry.merge(delta)
            self.registry.merge(
                _relabel(
                    delta, {"tenant": job.tenant, "job": job.job_id}
                )
            )
        self._publish(job, "progress", metrics=delta)

    # -- finalization / cancellation ---------------------------------------

    def _write_stats(self, job: ActiveJob) -> None:
        """Per-kind stats + metrics snapshot next to the journal,
        plus the job's normalized run record in the service ledger."""
        records = job.journal.load_records()
        results = assemble_results(
            job.record.spec,
            [(rec.index, rec.kind, rec.run) for rec in records],
        )
        directory = self.store.job_dir(job.job_id)
        for kind, result in results.items():
            save_result(result, directory / f"{kind.name.lower()}.json")
        snapshot_path = directory / "metrics.json"
        snapshot_path.write_text(
            json.dumps(job.registry.snapshot(), sort_keys=True) + "\n"
        )
        try:
            self.ledger.append(
                record_from_results(
                    job.record.spec,
                    results,
                    kind=KIND_SERVICE,
                    wall_seconds=(
                        time.monotonic() - job.started_monotonic
                    ),
                    registry=job.registry,
                    extra={
                        "job": job.job_id,
                        "tenant": job.tenant,
                    },
                )
            )
        except Exception as error:
            # The ledger is telemetry; it must never fail the job.
            self.log(
                f"[service] job {job.job_id}: ledger append failed "
                f"({error})"
            )

    async def _finalize(self, job: ActiveJob) -> None:
        if job.finalizing or job.record.terminal:
            return
        job.finalizing = True
        job.journal.close()
        if job.cancelled:
            state = JobState.CANCELLED
        elif job.failed:
            state = JobState.FAILED
        else:
            state = JobState.DONE
        error = None
        if job.failed and not job.cancelled:
            index, message = sorted(job.failed.items())[0]
            error = (
                f"{len(job.failed)} unit(s) failed permanently "
                f"(first: #{index}: {message})"
            )
        if state == JobState.DONE:
            # Stats assembly re-reads the whole journal; keep the
            # event loop responsive while it happens.
            await asyncio.get_running_loop().run_in_executor(
                None, self._write_stats, job
            )
        job.record = self.store.transition(
            job.record, state, finished_utc=time.time(), error=error
        )
        job.journal.release_lock()
        self._count_job_event(state)
        self.registry.histogram(JOB_SECONDS_METRIC).observe(
            time.monotonic() - job.started_monotonic
        )
        self.log(
            f"[service] job {job.job_id} {state}: "
            f"{job.done}/{job.total} units"
            + (f" ({len(job.failed)} failed)" if job.failed else "")
        )
        self._publish(job, state)
        for queue in list(job.subscribers):
            queue.put_nowait(None)

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job; already-journaled units stay journaled."""
        job = self.jobs.get(job_id)
        if job is None:
            record = self.store.load(job_id)
            if not record.terminal:
                record = self.store.transition(
                    record,
                    JobState.CANCELLED,
                    finished_utc=time.time(),
                )
                self._count_job_event(JobState.CANCELLED)
            return self._describe_record(record)
        if not job.record.terminal:
            job.cancelled = True
            job.pending.clear()
            self.fairshare.remove_job(job.tenant, job.job_id)
            if job.drained:
                await self._finalize(job)
            if self._wake is not None:
                self._wake.set()
        return self.describe_job(job_id)

    # -- events ------------------------------------------------------------

    def _publish(
        self,
        job: ActiveJob,
        event: str,
        metrics: Optional[Dict[str, Any]] = None,
        health: Optional[Dict[str, Any]] = None,
    ) -> None:
        job.seq += 1
        payload = {
            "event": event,
            "seq": job.seq,
            "job": job.job_id,
            "tenant": job.tenant,
            "state": job.record.state,
            "done": job.done,
            "resumed": job.resumed,
            "failed": len(job.failed),
            "total": job.total,
            "utc": time.time(),
            "metrics": metrics,
        }
        if health is not None:
            payload["health"] = health
        for queue in list(job.subscribers):
            queue.put_nowait(payload)

    def subscribe(
        self, job_id: str
    ) -> "asyncio.Queue[Optional[Dict[str, Any]]]":
        """An event queue for one job, primed with a cumulative snapshot.

        The primer means late subscribers still converge: snapshot +
        subsequent deltas folds to the job's exact final registry.
        Terminal (or inactive) jobs get the snapshot, the terminal
        event, and the end-of-stream sentinel immediately.
        """
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = (
            asyncio.Queue()
        )
        job = self.jobs.get(job_id)
        if job is not None:
            queue.put_nowait(
                {
                    "event": "snapshot",
                    "seq": job.seq,
                    "job": job.job_id,
                    "tenant": job.tenant,
                    "state": job.record.state,
                    "done": job.done,
                    "resumed": job.resumed,
                    "failed": len(job.failed),
                    "total": job.total,
                    "utc": time.time(),
                    "metrics": job.registry.snapshot(),
                }
            )
            if job.record.terminal:
                queue.put_nowait(
                    {
                        "event": job.record.state,
                        "seq": job.seq,
                        "job": job.job_id,
                        "tenant": job.tenant,
                        "state": job.record.state,
                        "done": job.done,
                        "resumed": job.resumed,
                        "failed": len(job.failed),
                        "total": job.total,
                        "utc": time.time(),
                        "metrics": None,
                    }
                )
                queue.put_nowait(None)
            else:
                job.subscribers.append(queue)
            return queue
        # Not in memory (e.g. terminal before a restart): replay the
        # persisted envelope as a single terminal event.
        record = self.store.load(job_id)
        progress = self.store.progress(record)
        queue.put_nowait(
            {
                "event": record.state,
                "seq": 0,
                "job": record.job_id,
                "tenant": record.tenant,
                "state": record.state,
                "done": progress["done"],
                "resumed": 0,
                "failed": 0,
                "total": progress["total"],
                "utc": time.time(),
                "metrics": None,
            }
        )
        queue.put_nowait(None)
        return queue

    def unsubscribe(
        self,
        job_id: str,
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]",
    ) -> None:
        job = self.jobs.get(job_id)
        if job is not None and queue in job.subscribers:
            job.subscribers.remove(queue)

    # -- status / metrics --------------------------------------------------

    def _describe_record(self, record: JobRecord) -> Dict[str, Any]:
        payload = record.to_dict()
        payload.update(self.store.progress(record))
        return payload

    def describe_job(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            return self._describe_record(self.store.load(job_id))
        payload = job.record.to_dict()
        payload.update(
            {
                "done": job.done,
                "total": job.total,
                "failed_units": len(job.failed),
                "pending": len(job.pending),
                "inflight": job.inflight,
                "cancelled": job.cancelled,
                "cached": job.cached,
                "health": job.health.summary(),
            }
        )
        return payload

    def history(
        self,
        fingerprint: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run-ledger records as wire payloads, oldest first."""
        return [
            record.to_dict()
            for record in self.ledger.history(
                fingerprint=fingerprint, kind=kind, limit=limit
            )
        ]

    def describe_jobs(self) -> List[Dict[str, Any]]:
        described = []
        for record in self.store.list_jobs():
            described.append(self.describe_job(record.job_id))
        return described

    def _count_job_event(self, event: str) -> None:
        self.registry.counter(JOBS_METRIC, {"event": event}).inc()

    def count_http(self, method: str, code: int) -> None:
        self.registry.counter(
            HTTP_METRIC, {"method": method, "code": str(code)}
        ).inc()

    def metrics_registry(self) -> MetricsRegistry:
        """The service registry with liveness gauges refreshed."""
        running = sum(
            1
            for job in self.jobs.values()
            if job.record.state == JobState.RUNNING
        )
        queued = sum(
            1
            for job in self.jobs.values()
            if job.record.state == JobState.QUEUED
        )
        self.registry.gauge(RUNNING_GAUGE).set(running)
        self.registry.gauge(QUEUED_GAUGE).set(queued)
        return self.registry
