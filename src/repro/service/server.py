"""A stdlib-only asyncio HTTP front end for :class:`CampaignService`.

One ``asyncio.start_server`` loop, HTTP/1.1 with ``Connection: close``
semantics — deliberately minimal so the daemon has zero dependencies
beyond the standard library.  Endpoints:

========================  ====================================================
``GET  /healthz``         liveness + uptime + job counts
``POST /jobs``            submit ``{"spec": {...}, "tenant": "..."}`` → 202
``GET  /jobs``            list all jobs (persisted envelopes + progress)
``GET  /jobs/{id}``       one job's status
``DELETE /jobs/{id}``     cancel (idempotent on terminal jobs)
``GET  /jobs/{id}/events``  SSE stream of progress events
``GET  /history``         run-ledger records (``?fingerprint=&kind=&limit=``)
``GET  /metrics``         service registry, Prometheus text exposition
``GET  /metrics.jsonl``   same registry, JSONL export schema
``POST /shutdown``        request a graceful daemon shutdown
========================  ====================================================

The SSE stream speaks the job-event schema documented in
``docs/service.md``: a ``snapshot`` primer (cumulative metrics), then
``progress`` events each carrying one shard's metrics *delta*, then a
terminal event (``done``/``failed``/``cancelled``) which ends the
stream.

On start the server writes ``<root>/service.json`` (host, bound port,
pid) so thin clients can discover the endpoint from the service root
alone; a clean shutdown removes it.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl

from repro.campaign.spec import CampaignError
from repro.obs.export import metrics_jsonl_lines, prom_text
from repro.service.runtime import (
    TERMINAL_EVENTS,
    CampaignService,
    ServiceConfig,
)
from repro.service.jobstore import ServiceError

ENDPOINT_FILENAME = "service.json"
MAX_BODY_BYTES = 2 * 1024 * 1024


def endpoint_path(root: Any) -> Path:
    return Path(root) / ENDPOINT_FILENAME


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int, body: bytes, content_type: str
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Dict[str, Any]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _response(status, body, "application/json")


class ServiceServer:
    """Binds a :class:`CampaignService` to a TCP endpoint."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._host = service.config.host
        self._port = service.config.port

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        payload = {
            "host": self._host,
            "port": self._port,
            "url": self.url,
            "pid": os.getpid(),
            "started_utc": time.time(),
        }
        endpoint_path(self.service.config.root).write_text(
            json.dumps(payload, sort_keys=True) + "\n"
        )
        self.service.log(f"[service] listening on {self.url}")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            endpoint_path(self.service.config.root).unlink()
        except OSError:
            pass

    # -- request handling --------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        method = "?"
        status = 500
        try:
            method, path, body = await self._read_request(reader)
            status = await self._route(method, path, body, writer)
        except _HttpError as error:
            status = error.status
            writer.write(
                _json_response(error.status, {"error": error.message})
            )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            status = 0  # client went away; nothing to count
        except Exception as error:  # never take the daemon down
            writer.write(
                _json_response(500, {"error": str(error)})
            )
        finally:
            if status:
                self.service.count_http(method, status)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode(
                "ascii", "replace"
            ).partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> int:
        service = self.service
        path, _, raw_query = path.partition("?")
        query = dict(parse_qsl(raw_query))
        if path == "/healthz" and method == "GET":
            writer.write(
                _json_response(
                    200,
                    {
                        "ok": True,
                        "pid": os.getpid(),
                        "uptime_seconds": round(
                            time.time() - service.started_utc, 3
                        ),
                        "jobs": len(service.store.list_jobs()),
                        "active": sum(
                            1
                            for job in service.jobs.values()
                            if not job.record.terminal
                        ),
                    },
                )
            )
            return 200
        if path == "/metrics" and method == "GET":
            text = prom_text(service.metrics_registry())
            writer.write(
                _response(
                    200, text.encode(), "text/plain; version=0.0.4"
                )
            )
            return 200
        if path == "/metrics.jsonl" and method == "GET":
            lines = metrics_jsonl_lines(service.metrics_registry())
            body_text = "\n".join(lines) + "\n"
            writer.write(
                _response(
                    200, body_text.encode(), "application/x-ndjson"
                )
            )
            return 200
        if path == "/jobs" and method == "POST":
            payload = self._parse_json(body)
            spec_payload = payload.get("spec")
            if not isinstance(spec_payload, dict):
                raise _HttpError(
                    400, "submission needs a 'spec' object"
                )
            tenant = payload.get("tenant", "default")
            try:
                record = await service.submit(spec_payload, tenant)
            except (CampaignError, ServiceError) as error:
                raise _HttpError(400, str(error))
            writer.write(
                _json_response(202, service.describe_job(record.job_id))
            )
            return 202
        if path == "/jobs" and method == "GET":
            writer.write(
                _json_response(200, {"jobs": service.describe_jobs()})
            )
            return 200
        if path == "/history" and method == "GET":
            limit = None
            if "limit" in query:
                try:
                    limit = int(query["limit"])
                except ValueError:
                    raise _HttpError(400, "limit must be an integer")
            try:
                runs = service.history(
                    fingerprint=query.get("fingerprint"),
                    kind=query.get("kind"),
                    limit=limit,
                )
            except Exception as error:
                raise _HttpError(400, str(error))
            writer.write(_json_response(200, {"runs": runs}))
            return 200
        if path == "/shutdown" and method == "POST":
            writer.write(_json_response(200, {"stopping": True}))
            self.shutdown_requested.set()
            return 200
        if path.startswith("/jobs/"):
            return await self._route_job(method, path, writer)
        raise _HttpError(404, f"no such endpoint: {method} {path}")

    async def _route_job(
        self, method: str, path: str, writer: asyncio.StreamWriter
    ) -> int:
        service = self.service
        parts = [p for p in path.split("/") if p]
        job_id = parts[1]
        tail = parts[2] if len(parts) > 2 else None
        if tail not in (None, "events") or len(parts) > 3:
            raise _HttpError(404, f"no such endpoint: {path}")
        try:
            if tail == "events" and method == "GET":
                await self._stream_events(job_id, writer)
                return 200
            if tail is None and method == "GET":
                writer.write(
                    _json_response(200, service.describe_job(job_id))
                )
                return 200
            if tail is None and method == "DELETE":
                writer.write(
                    _json_response(200, await service.cancel(job_id))
                )
                return 200
        except ServiceError as error:
            raise _HttpError(404, str(error))
        raise _HttpError(405, f"{method} not allowed on {path}")

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        queue = self.service.subscribe(job_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                data = json.dumps(event, sort_keys=True)
                frame = (
                    f"event: {event['event']}\n"
                    f"id: {event['seq']}\n"
                    f"data: {data}\n\n"
                )
                writer.write(frame.encode())
                await writer.drain()
                if event["event"] in TERMINAL_EVENTS:
                    break
        finally:
            self.service.unsubscribe(job_id, queue)

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, Any]:
        if not body:
            raise _HttpError(400, "empty request body")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"invalid JSON body: {error}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be an object")
        return payload


async def serve(
    config: ServiceConfig, log: Optional[Any] = None
) -> None:
    """Run the daemon until SIGTERM/SIGINT or ``POST /shutdown``.

    This is the whole ``repro service start`` story: build the
    service, recover persisted jobs, bind the socket, then block on
    the first shutdown signal and drain cleanly (journals flushed,
    locks released, endpoint file removed).
    """
    service = CampaignService(config, log=log)
    server = ServiceServer(service)
    await service.start()
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, server.shutdown_requested.set
            )
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / exotic platform: HTTP shutdown only
    await server.shutdown_requested.wait()
    service.log("[service] shutting down")
    await server.stop()
    await service.stop()


def run_service(
    config: ServiceConfig, log: Optional[Any] = None
) -> None:
    """Blocking entry point used by the CLI."""
    asyncio.run(serve(config, log=log))
