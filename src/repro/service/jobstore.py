"""The job store: every submitted campaign as a directory on disk.

A job is ``<root>/jobs/<job_id>/`` holding ``job.json`` (tenant,
state, timestamps) and the standard campaign ``journal.jsonl`` —
*exactly* the layout ``campaign run --out`` produces, plus the job
envelope.  That identity is the crash-recovery story: restarting the
service is the journal kill+resume path applied to every non-terminal
job, and ``repro campaign status --out <job dir>`` works on a service
job unchanged.

``job.json`` updates are atomic (write-temp + rename), so a SIGKILL
can never leave a half-written envelope; the journal's own torn-tail
repair covers the unit records.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.campaign.journal import CampaignJournal
from repro.campaign.spec import CampaignError, CampaignSpec
from repro.errors import ReproError

JOB_FILENAME = "job.json"
JOURNAL_FILENAME = "journal.jsonl"
JOB_SCHEMA = 1


class ServiceError(ReproError):
    """Raised for malformed submissions or job-store misuse."""


class JobState:
    """The job lifecycle (plain strings so they serialize as-is)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})
    ALL = frozenset({QUEUED, RUNNING, DONE, FAILED, CANCELLED})


@dataclass(frozen=True)
class JobRecord:
    """The persisted envelope of one submitted campaign."""

    job_id: str
    tenant: str
    spec: CampaignSpec
    state: str = JobState.QUEUED
    created_utc: float = field(default_factory=time.time)
    started_utc: Optional[float] = None
    finished_utc: Optional[float] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "created_utc": self.created_utc,
            "started_utc": self.started_utc,
            "finished_utc": self.finished_utc,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        if payload.get("schema") != JOB_SCHEMA:
            raise ServiceError(
                f"unsupported job schema: {payload.get('schema')!r}"
            )
        state = payload.get("state")
        if state not in JobState.ALL:
            raise ServiceError(f"unknown job state: {state!r}")
        try:
            return cls(
                job_id=payload["job_id"],
                tenant=payload["tenant"],
                spec=CampaignSpec.from_dict(payload["spec"]),
                state=state,
                created_utc=payload.get("created_utc", 0.0),
                started_utc=payload.get("started_utc"),
                finished_utc=payload.get("finished_utc"),
                error=payload.get("error"),
            )
        except KeyError as error:
            raise ServiceError(f"malformed job record: missing {error}")


class JobStore:
    """All jobs of one service root, persisted as directories."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._sequence = self._scan_sequence()

    # -- paths -------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def journal_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / JOURNAL_FILENAME

    def journal(self, job_id: str) -> CampaignJournal:
        return CampaignJournal(self.journal_path(job_id))

    # -- id allocation -----------------------------------------------------

    def _scan_sequence(self) -> int:
        highest = 0
        for entry in self.jobs_dir.iterdir():
            name = entry.name
            if name.startswith("j") and "-" in name:
                try:
                    highest = max(highest, int(name[1:].split("-")[0]))
                except ValueError:
                    continue
        return highest

    def _allocate_id(self, spec: CampaignSpec) -> str:
        self._sequence += 1
        return f"j{self._sequence:05d}-{spec.fingerprint()[:8]}"

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self, spec: CampaignSpec, tenant: str = "default"
    ) -> JobRecord:
        """Persist a new queued job (envelope + journal header)."""
        if not tenant or "/" in tenant:
            raise ServiceError(f"invalid tenant name: {tenant!r}")
        record = JobRecord(
            job_id=self._allocate_id(spec), tenant=tenant, spec=spec
        )
        directory = self.job_dir(record.job_id)
        directory.mkdir(parents=True, exist_ok=False)
        CampaignJournal.create(
            directory / JOURNAL_FILENAME, spec
        )
        self.save(record)
        return record

    def save(self, record: JobRecord) -> JobRecord:
        """Atomically persist one job envelope."""
        path = self.job_dir(record.job_id) / JOB_FILENAME
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w") as handle:
            json.dump(record.to_dict(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        return record

    def load(self, job_id: str) -> JobRecord:
        path = self.job_dir(job_id) / JOB_FILENAME
        if not path.exists():
            raise ServiceError(f"no such job: {job_id}")
        try:
            return JobRecord.from_dict(json.loads(path.read_text()))
        except json.JSONDecodeError as error:
            raise ServiceError(f"corrupt job envelope {path}: {error}")

    def exists(self, job_id: str) -> bool:
        return (self.job_dir(job_id) / JOB_FILENAME).exists()

    def list_jobs(self) -> List[JobRecord]:
        """Every job, oldest first (ids are sequence-prefixed)."""
        records = []
        for entry in sorted(self.jobs_dir.iterdir()):
            if (entry / JOB_FILENAME).exists():
                records.append(self.load(entry.name))
        return records

    def transition(self, record: JobRecord, state: str, **fields: Any) -> JobRecord:
        """Persist a state change (plus any envelope field updates)."""
        if state not in JobState.ALL:
            raise ServiceError(f"unknown job state: {state!r}")
        return self.save(replace(record, state=state, **fields))

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> List[JobRecord]:
        """Re-adopt every non-terminal job after a (possibly unclean)
        shutdown.

        For each queued/running job: repair the journal's torn tail
        (a SIGKILL mid-append leaves at most one), then hand it back
        as *queued* — the runtime's normal resume path (skip journaled
        units, execute the rest) does the actual recovery, which is
        why restart-completed results are bit-identical to an
        uninterrupted run.
        """
        recovered = []
        for record in self.list_jobs():
            if record.terminal:
                continue
            journal = self.journal(record.job_id)
            journal.repair()
            if record.state != JobState.QUEUED:
                record = self.transition(record, JobState.QUEUED)
            recovered.append(record)
        return recovered

    # -- status ------------------------------------------------------------

    def progress(self, record: JobRecord) -> Dict[str, int]:
        """(done, total) derived from the journal, crash-safe."""
        total = record.spec.unit_count()
        try:
            done = len(self.journal(record.job_id).completed_keys())
        except CampaignError:
            done = 0
        return {"done": done, "total": total}
