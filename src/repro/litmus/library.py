"""Hand-written classic litmus tests.

These named constructors mirror the tests the paper discusses by name:
the coherence quartet (CoRR, CoWR, CoRW, CoWW), message passing with
and without release/acquire fences (Fig. 1), load buffering, store
buffering, S, R, 2+2W (via RMW synchronization, Sec. 3.3), and the
MP-CO coherence test used to recreate the NVIDIA Kepler bug (Sec. 5.4).

Each test carries a :class:`~repro.litmus.program.BehaviorSpec` naming
its behaviour of interest; the systematic generator in
:mod:`repro.mutation` produces a superset of these and is cross-checked
against this library in the test suite.

Register naming: ``r0``, ``r1``, ... in program order.  Stored values:
unique increasing from 1.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
)
from repro.litmus.program import BehaviorSpec, LitmusTest
from repro.memory_model.events import X, Y
from repro.memory_model.models import (
    REL_ACQ_SC_PER_LOCATION,
    SC_PER_LOCATION,
)


def corr() -> LitmusTest:
    """Coherence of Read-Read (Fig. 1a).

    Disallowed: the first read observes the new value while the second
    observes the stale initial value.
    """
    return LitmusTest(
        name="corr",
        threads=[
            [AtomicLoad(X, "r0"), AtomicLoad(X, "r1")],
            [AtomicStore(X, 1)],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 1, "r1": 0}),
        description="read-read coherence: reads must not go backwards",
    )


def cowr() -> LitmusTest:
    """Coherence of Write-Read.

    Disallowed: a thread reads the initial value after its own write.
    """
    return LitmusTest(
        name="cowr",
        threads=[
            [AtomicStore(X, 1), AtomicLoad(X, "r0")],
            [AtomicStore(X, 2)],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 0}, co=((2, 1),)),
        description="write-read coherence: a read sees its own write",
    )


def corw() -> LitmusTest:
    """Coherence of Read-Write.

    Disallowed: a thread reads another thread's write, yet its own
    po-later write ends up coherence-before that write.
    """
    return LitmusTest(
        name="corw",
        threads=[
            [AtomicLoad(X, "r0"), AtomicStore(X, 1)],
            [AtomicStore(X, 2)],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2}, co=((1, 2),)),
        description="read-write coherence",
    )


def coww() -> LitmusTest:
    """Coherence of Write-Write, with an observer thread.

    Disallowed: program-ordered writes reach memory out of order.  The
    observer's two reads witness the coherence segment the final value
    cannot (Sec. 3.1: "an observer thread is included for the special
    case where all memory events are concretized as writes").
    """
    return LitmusTest(
        name="coww",
        threads=[
            [AtomicStore(X, 1), AtomicStore(X, 2)],
            [AtomicStore(X, 3)],
            [AtomicLoad(X, "r0"), AtomicLoad(X, "r1")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 3}, co=((2, 3), (3, 1))),
        observer_threads=[2],
        description="write-write coherence witnessed by an observer",
    )


def mp() -> LitmusTest:
    """Message passing without fences — the weak outcome is *allowed*.

    This is the classic weak-memory behaviour stress testing tries to
    surface; it is also what Mutator 3's drop-both-fences mutants check.
    """
    return LitmusTest(
        name="mp",
        threads=[
            [AtomicStore(X, 1), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r0"), AtomicLoad(X, "r1")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 0}),
        description="message passing, no synchronization",
    )


def mp_relacq() -> LitmusTest:
    """Message passing with release/acquire fences (Fig. 1b).

    Disallowed under rel-acq-SC-per-location: the flag is observed but
    the data is stale.  Observing this on AMD led to a driver fix and a
    WebGPU specification change (Sec. 5.4).
    """
    return LitmusTest(
        name="mp_relacq",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r0"), Fence(), AtomicLoad(X, "r1")],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 0}),
        description="message passing with rel/acq fences",
    )


def lb() -> LitmusTest:
    """Load buffering without fences — weak outcome allowed."""
    return LitmusTest(
        name="lb",
        threads=[
            [AtomicLoad(X, "r0"), AtomicStore(Y, 1)],
            [AtomicLoad(Y, "r1"), AtomicStore(X, 2)],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 1}),
        description="load buffering, no synchronization",
    )


def lb_relacq() -> LitmusTest:
    """Load buffering with fences — weak outcome disallowed."""
    return LitmusTest(
        name="lb_relacq",
        threads=[
            [AtomicLoad(X, "r0"), Fence(), AtomicStore(Y, 1)],
            [AtomicLoad(Y, "r1"), Fence(), AtomicStore(X, 2)],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 1}),
        description="load buffering with rel/acq fences",
    )


def sb() -> LitmusTest:
    """Store buffering without fences — weak outcome allowed."""
    return LitmusTest(
        name="sb",
        threads=[
            [AtomicStore(X, 1), AtomicLoad(Y, "r0")],
            [AtomicStore(Y, 2), AtomicLoad(X, "r1")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 0, "r1": 0}),
        description="store buffering, no synchronization",
    )


def s_relacq() -> LitmusTest:
    """The S test with fences — disallowed write-order inversion."""
    return LitmusTest(
        name="s_relacq",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r0"), Fence(), AtomicStore(X, 3)],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2}, co=((3, 1),)),
        description="S: synchronized write ordered after a later write",
    )


def sb_relacq_rmw() -> LitmusTest:
    """Store buffering made testable with rel/acq fences plus RMWs.

    Plain fences cannot forbid SB (Sec. 3.3); replacing the
    post-release write-side event with an RMW creates the
    synchronization, mimicking a sequentially consistent fence.
    """
    return LitmusTest(
        name="sb_relacq_rmw",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicExchange(Y, 2, "r0")],
            [AtomicExchange(Y, 3, "r1"), Fence(), AtomicLoad(X, "r2")],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 0, "r1": 2, "r2": 0}),
        description="store buffering via RMW synchronization",
    )


def r_relacq_rmw() -> LitmusTest:
    """The R test via RMW synchronization."""
    return LitmusTest(
        name="r_relacq_rmw",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicStore(Y, 2)],
            [AtomicExchange(Y, 3, "r0"), Fence(), AtomicLoad(X, "r1")],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 0}),
        description="R: write visible to RMW but data read stale",
    )


def two_plus_two_w_relacq_rmw() -> LitmusTest:
    """2+2W via RMW synchronization."""
    return LitmusTest(
        name="2+2w_relacq_rmw",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicStore(Y, 2)],
            [AtomicExchange(Y, 3, "r0"), Fence(), AtomicStore(X, 4)],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2}, co=((2, 3), (4, 1))),
        description="2+2W: both write pairs inverted",
    )


def mp_co() -> LitmusTest:
    """Message-passing coherence (MP-CO, Sec. 5.4).

    Single-location MP: a reader sees the second write and then the
    first.  Violations recreate the NVIDIA Kepler coherence bug.
    """
    return LitmusTest(
        name="mp_co",
        threads=[
            [AtomicStore(X, 1), AtomicStore(X, 2)],
            [AtomicLoad(X, "r0"), AtomicLoad(X, "r1")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 1}),
        description="single-location message passing (coherence)",
    )


def corr_rmw() -> LitmusTest:
    """CoRR with the maximal RMW replacement (Sec. 3.1).

    The second read and the remote write become RMWs; the first read
    must stay a plain load or its write half would break the cycle.
    """
    return LitmusTest(
        name="corr_rmw",
        threads=[
            [AtomicLoad(X, "r0"), AtomicExchange(X, 1, "r1")],
            [AtomicExchange(X, 2, "r2")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 0}),
        description="CoRR with maximal RMW substitution",
    )


_BUILDERS: Dict[str, Callable[[], LitmusTest]] = {
    builder().name: builder
    for builder in (
        corr,
        cowr,
        corw,
        coww,
        mp,
        mp_relacq,
        lb,
        lb_relacq,
        sb,
        s_relacq,
        sb_relacq_rmw,
        r_relacq_rmw,
        two_plus_two_w_relacq_rmw,
        mp_co,
        corr_rmw,
    )
}


def test_names() -> List[str]:
    """Names of all library tests, sorted."""
    return sorted(_BUILDERS)


def by_name(name: str) -> LitmusTest:
    """Construct a library test by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown litmus test {name!r}; known: {', '.join(test_names())}"
        ) from None


def all_tests() -> List[LitmusTest]:
    """Every library test, freshly constructed."""
    return [builder() for builder in _BUILDERS.values()]
