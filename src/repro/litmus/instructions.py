"""The instruction set of litmus-test programs.

Litmus tests in the paper's WebGPU subset use only four instructions
(Sec. 2.3): atomic load, atomic store, atomic read-modify-write, and the
release/acquire fence.  Each instruction knows how to produce the
:class:`~repro.memory_model.events.Event` it generates when executed,
which ties the syntactic program to the formal execution model.

RMWs are concretized as atomic *exchange* (store a constant, return the
old value) — the simplest unconditional RMW, matching how the paper's
artifact instantiates RMW events with "a unique increasing value".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.memory_model.events import Event, Location, fence, read, rmw, write


class Instruction(abc.ABC):
    """One instruction of a litmus-test thread."""

    @abc.abstractmethod
    def to_event(self, uid: int, thread: int, label: str = "") -> Event:
        """The event this instruction contributes to an execution."""

    @property
    def is_memory_access(self) -> bool:
        return not isinstance(self, Fence)

    @property
    def reads(self) -> bool:
        """True if the instruction observes a value into a register."""
        return isinstance(self, (AtomicLoad, AtomicExchange))

    @property
    def writes(self) -> bool:
        """True if the instruction stores a value."""
        return isinstance(self, (AtomicStore, AtomicExchange))

    @abc.abstractmethod
    def pretty(self) -> str:
        """Source-like rendering, e.g. ``r0 = atomicLoad(x)``."""


@dataclass(frozen=True)
class AtomicLoad(Instruction):
    """``register = atomicLoad(location)``"""

    location: Location
    register: str

    def to_event(self, uid: int, thread: int, label: str = "") -> Event:
        return read(uid, thread, self.location, label)

    def pretty(self) -> str:
        return f"{self.register} = atomicLoad({self.location})"


@dataclass(frozen=True)
class AtomicStore(Instruction):
    """``atomicStore(location, value)``"""

    location: Location
    value: int

    def to_event(self, uid: int, thread: int, label: str = "") -> Event:
        return write(uid, thread, self.location, self.value, label)

    def pretty(self) -> str:
        return f"atomicStore({self.location}, {self.value})"


@dataclass(frozen=True)
class AtomicExchange(Instruction):
    """``register = atomicExchange(location, value)`` — the RMW."""

    location: Location
    value: int
    register: str

    def to_event(self, uid: int, thread: int, label: str = "") -> Event:
        return rmw(uid, thread, self.location, self.value, label)

    def pretty(self) -> str:
        return f"{self.register} = atomicExchange({self.location}, {self.value})"


@dataclass(frozen=True)
class Fence(Instruction):
    """A release/acquire fence.

    In the WGSL version of the paper's tests this is realised with a
    ``storageBarrier()`` control barrier, whose pre-specification-change
    semantics provided release/acquire ordering across workgroups.
    """

    def to_event(self, uid: int, thread: int, label: str = "") -> Event:
        return fence(uid, thread, label)

    def pretty(self) -> str:
        return "storageBarrier()"
