"""Observable outcomes of litmus-test runs.

An :class:`Outcome` is everything the testing harness can actually see
after one instance of a test: the value each read landed in its
register, and the final value of each memory location.  Candidate
executions project onto outcomes via :func:`outcome_of_execution`; the
oracle compares runtime outcomes against the projections of allowed
executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

from repro.litmus.program import LitmusTest
from repro.memory_model.events import Location
from repro.memory_model.execution import Execution, INITIAL_VALUE

Signature = Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]


@dataclass(frozen=True)
class Outcome:
    """The observables of one executed test instance."""

    reads: Mapping[str, int]
    finals: Mapping[Location, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", dict(self.reads))
        object.__setattr__(self, "finals", dict(self.finals))

    def signature(self) -> Signature:
        """A canonical hashable form used for set membership tests."""
        reads = tuple(sorted(self.reads.items()))
        finals = tuple(
            sorted((loc.name, value) for loc, value in self.finals.items())
        )
        return (reads, finals)

    def describe(self) -> str:
        parts = [f"{reg}={val}" for reg, val in sorted(self.reads.items())]
        parts += [
            f"*{name}={val}"
            for name, val in sorted(
                (loc.name, v) for loc, v in self.finals.items()
            )
        ]
        return ", ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Outcome):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


def outcome_of_execution(test: LitmusTest, execution: Execution) -> Outcome:
    """Project a candidate execution onto its observable outcome."""
    registers = test.register_events(execution)
    reads = {
        register: execution.observed_value(event)
        for register, event in registers.items()
    }
    finals: Dict[Location, int] = {}
    for location in test.locations:
        order = execution.co_order(location)
        if order:
            final = order[-1].value
            assert final is not None
            finals[location] = final
        else:
            finals[location] = INITIAL_VALUE
    return Outcome(reads=reads, finals=finals)


class OutcomeHistogram:
    """Counts of observed outcomes across many instances of one test."""

    def __init__(self) -> None:
        self._counts: Dict[Outcome, int] = {}

    def record(self, outcome: Outcome, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[outcome] = self._counts.get(outcome, 0) + count

    def count(self, outcome: Outcome) -> int:
        return self._counts.get(outcome, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def outcomes(self) -> Iterator[Tuple[Outcome, int]]:
        """Outcomes and counts, most frequent first (then stable order)."""
        return iter(
            sorted(
                self._counts.items(),
                key=lambda item: (-item[1], item[0].signature()),
            )
        )

    def merge(self, other: "OutcomeHistogram") -> "OutcomeHistogram":
        merged = OutcomeHistogram()
        for histogram in (self, other):
            for outcome, count in histogram._counts.items():
                merged.record(outcome, count)
        return merged

    def frequency(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.count(outcome) / self.total

    def pretty(self, limit: int = 10) -> str:
        lines: List[str] = []
        for index, (outcome, count) in enumerate(self.outcomes()):
            if index >= limit:
                lines.append(f"  ... {len(self._counts) - limit} more")
                break
            lines.append(f"  {count:>8}  {outcome.describe()}")
        return "\n".join(lines) if lines else "  <empty>"

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"OutcomeHistogram(total={self.total}, distinct={len(self)})"
