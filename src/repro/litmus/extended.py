"""Extended litmus classics beyond the paper's two-thread suite.

The MC Mutants suite is built from two-thread cycles, but the
methodology "applies generally to MCS testing" (Sec. 1.2); these
multi-thread classics from the weak-memory literature (Alglave et al.,
"Herding Cats") exercise the formal layer and the simulator on wider
shapes:

* **IRIW** — independent reads of independent writes: two readers
  disagree about the order of two unrelated writes.  Allowed under
  SC-per-location (it is only forbidden by multi-copy atomicity).
* **WRC** — write-to-read causality: a write observed through a
  middleman thread.
* **ISA2** — a three-thread message-passing chain.
* **CoRR3** — three program-ordered reads observing a coherence
  zig-zag; disallowed by SC-per-location like CoRR.
* **RWC** — read-to-write causality.
* **Z6.3 / W+RWC**-style shapes are representable too; the ones here
  are the set most often used to fingerprint memory models.

Each test's target behaviour is oracle-verified in the test suite:
the coherence variants are disallowed, the weak-memory variants
allowed (SC-per-location says nothing across locations).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.litmus.instructions import AtomicLoad, AtomicStore, Fence
from repro.litmus.program import BehaviorSpec, LitmusTest
from repro.memory_model.events import Location, X, Y
from repro.memory_model.models import (
    REL_ACQ_SC_PER_LOCATION,
    SC_PER_LOCATION,
)

Z = Location("z")


def iriw() -> LitmusTest:
    """Independent Reads of Independent Writes.

    Readers 2 and 3 observe the writes to x and y in opposite orders.
    Allowed under SC-per-location; forbidden only by models with
    multi-copy atomicity (e.g. SC, x86-TSO).
    """
    return LitmusTest(
        name="iriw",
        threads=[
            [AtomicStore(X, 1)],
            [AtomicStore(Y, 2)],
            [AtomicLoad(X, "r0"), AtomicLoad(Y, "r1")],
            [AtomicLoad(Y, "r2"), AtomicLoad(X, "r3")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(
            reads={"r0": 1, "r1": 0, "r2": 2, "r3": 0}
        ),
        description="readers disagree about unrelated write order",
    )


def wrc() -> LitmusTest:
    """Write-to-Read Causality.

    Thread 1 reads x then writes y; thread 2 reads y then x.  The weak
    outcome breaks the causal chain.  Allowed under SC-per-location.
    """
    return LitmusTest(
        name="wrc",
        threads=[
            [AtomicStore(X, 1)],
            [AtomicLoad(X, "r0"), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r1"), AtomicLoad(X, "r2")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 1, "r1": 2, "r2": 0}),
        description="causality through a middleman thread",
    )


def wrc_relacq() -> LitmusTest:
    """WRC with rel/acq fences on both consumer threads.

    The fence chain transfers the causal order, so the weak outcome is
    disallowed under rel-acq-SC-per-location.
    """
    return LitmusTest(
        name="wrc_relacq",
        threads=[
            [AtomicStore(X, 1)],
            [AtomicLoad(X, "r0"), Fence(), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r1"), Fence(), AtomicLoad(X, "r2")],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 1, "r1": 2, "r2": 0}),
        description="WRC with fenced consumers",
    )


def isa2() -> LitmusTest:
    """A three-thread message-passing chain (ISA2 shape)."""
    return LitmusTest(
        name="isa2",
        threads=[
            [AtomicStore(X, 1), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r0"), AtomicStore(Z, 3)],
            [AtomicLoad(Z, "r1"), AtomicLoad(X, "r2")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 3, "r2": 0}),
        description="three-hop message passing",
    )


def isa2_relacq() -> LitmusTest:
    """ISA2 with a full rel/acq fence chain.

    Perhaps surprisingly, the weak outcome stays *allowed*: the paper's
    model adds exactly ``po ; sw ; po`` to happens-before — one
    synchronization hop — whereas forbidding ISA2 needs *cumulative*
    release/acquire (C++'s transitive ``(sb ∪ sw)+``).  The enumeration
    oracle confirms this, which makes the test a nice probe of how the
    simplified WebGPU model differs from C++.
    """
    return LitmusTest(
        name="isa2_relacq",
        threads=[
            [AtomicStore(X, 1), Fence(), AtomicStore(Y, 2)],
            [AtomicLoad(Y, "r0"), Fence(), AtomicStore(Z, 3)],
            [AtomicLoad(Z, "r1"), Fence(), AtomicLoad(X, "r2")],
        ],
        model=REL_ACQ_SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 3, "r2": 0}),
        description="fenced three-hop message passing",
    )


def corr3() -> LitmusTest:
    """Three same-location reads observing a coherence zig-zag.

    The middle read goes backwards in coherence order — disallowed by
    SC-per-location, like CoRR but with a longer observation window.
    """
    return LitmusTest(
        name="corr3",
        threads=[
            [
                AtomicLoad(X, "r0"),
                AtomicLoad(X, "r1"),
                AtomicLoad(X, "r2"),
            ],
            [AtomicStore(X, 1), AtomicStore(X, 2)],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 2, "r1": 1, "r2": 2}),
        description="three reads zig-zag through coherence order",
    )


def rwc() -> LitmusTest:
    """Read-to-Write Causality.

    Thread 1 observes x then reads y stale; thread 2 writes y then
    reads x stale.  Allowed under SC-per-location.
    """
    return LitmusTest(
        name="rwc",
        threads=[
            [AtomicStore(X, 1)],
            [AtomicLoad(X, "r0"), AtomicLoad(Y, "r1")],
            [AtomicStore(Y, 2), AtomicLoad(X, "r2")],
        ],
        model=SC_PER_LOCATION,
        target=BehaviorSpec(reads={"r0": 1, "r1": 0, "r2": 0}),
        description="read-to-write causality",
    )


_BUILDERS: Dict[str, Callable[[], LitmusTest]] = {
    builder().name: builder
    for builder in (
        iriw,
        wrc,
        wrc_relacq,
        isa2,
        isa2_relacq,
        corr3,
        rwc,
    )
}

#: Tests whose target behaviour is disallowed under their model.  Note
#: isa2_relacq is *not* here: the paper's one-hop ``po;sw;po`` rule is
#: not cumulative, so the fenced ISA2 weak outcome remains allowed.
FORBIDDEN = ("wrc_relacq", "corr3")


def test_names() -> List[str]:
    return sorted(_BUILDERS)


def by_name(name: str) -> LitmusTest:
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown extended test {name!r}; known: "
            f"{', '.join(test_names())}"
        ) from None


def all_tests() -> List[LitmusTest]:
    return [builder() for builder in _BUILDERS.values()]
