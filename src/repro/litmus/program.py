"""Litmus-test programs: threads of instructions plus a target behaviour.

A :class:`LitmusTest` is the syntactic object the paper manipulates —
mutators rewrite its instructions, testing environments execute it, and
the oracle (built from exhaustive enumeration) classifies its outcomes.

Structural conventions, matching the paper:

* every store carries a *globally unique* non-zero value, so any
  observed value identifies the write that produced it;
* extra *observer* threads (used for the all-writes tests, Sec. 3.1)
  are ordinary threads flagged in :attr:`LitmusTest.observer_threads`;
* the intended (disallowed, or for mutants the closely-related allowed)
  behaviour is described by a :class:`BehaviorSpec` over registers and
  write values rather than raw events, so it survives mutation of the
  program text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MalformedProgramError
from repro.litmus.instructions import Fence, Instruction
from repro.memory_model.events import Event, Location
from repro.memory_model.execution import Execution
from repro.memory_model.models import MemoryModel, SC_PER_LOCATION


@dataclass(frozen=True)
class BehaviorSpec:
    """A class of candidate executions, named by observables.

    Attributes:
        reads: Required observed value per register (0 = initial value).
        co: Required coherence edges as ``(earlier_value, later_value)``
            pairs of write values; both writes must target one location.

    The spec is syntax-independent: it refers to registers and stored
    values, which mutators preserve, rather than to instruction
    positions, which they rearrange.
    """

    reads: Mapping[str, int] = field(default_factory=dict)
    co: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", dict(self.reads))

    def matches(self, test: "LitmusTest", execution: Execution) -> bool:
        """True iff ``execution`` realises this behaviour for ``test``."""
        registers = test.register_events(execution)
        for register, expected in self.reads.items():
            event = registers.get(register)
            if event is None:
                raise MalformedProgramError(
                    f"behaviour references unknown register {register!r}"
                )
            if execution.observed_value(event) != expected:
                return False
        writes_by_value = {
            event.value: event
            for event in execution.memory_events
            if event.is_write
        }
        for earlier_value, later_value in self.co:
            earlier = writes_by_value.get(earlier_value)
            later = writes_by_value.get(later_value)
            if earlier is None or later is None:
                raise MalformedProgramError(
                    f"behaviour references unknown write value in "
                    f"co pair ({earlier_value}, {later_value})"
                )
            if (earlier, later) not in execution.co:
                return False
        return True

    def describe(self) -> str:
        parts = [f"{reg}=={val}" for reg, val in sorted(self.reads.items())]
        parts += [f"co:{u}<{v}" for u, v in self.co]
        return " && ".join(parts) if parts else "<any>"


@dataclass(frozen=True)
class LitmusTest:
    """An executable litmus test.

    Attributes:
        name: Unique identifier (e.g. ``"corr"`` or
            ``"mp_relacq_mutant_drop_both"``).
        threads: Instruction sequences, one per thread; observer threads
            come last.
        model: The memory model this test checks conformance against.
        target: The behaviour of interest — for conformance tests the
            disallowed behaviour, for mutants the newly-allowed one.
        observer_threads: Indices of threads that only observe (used by
            all-writes tests to witness coherence order).
        description: Human-readable summary for reports.
    """

    name: str
    threads: Tuple[Tuple[Instruction, ...], ...]
    model: MemoryModel = SC_PER_LOCATION
    target: Optional[BehaviorSpec] = None
    observer_threads: FrozenSet[int] = frozenset()
    description: str = ""

    def __init__(
        self,
        name: str,
        threads: Sequence[Sequence[Instruction]],
        model: MemoryModel = SC_PER_LOCATION,
        target: Optional[BehaviorSpec] = None,
        observer_threads: Sequence[int] = (),
        description: str = "",
    ) -> None:
        object.__setattr__(
            self, "threads", tuple(tuple(thread) for thread in threads)
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "target", target)
        object.__setattr__(
            self, "observer_threads", frozenset(observer_threads)
        )
        object.__setattr__(self, "description", description)
        self._validate()

    # -- validation -----------------------------------------------------

    def _validate(self) -> None:
        if not self.threads:
            raise MalformedProgramError("a litmus test needs threads")
        values: Dict[int, str] = {}
        registers: List[str] = []
        for thread in self.threads:
            for instruction in thread:
                if instruction.writes:
                    value = instruction.value  # type: ignore[union-attr]
                    if value == 0:
                        raise MalformedProgramError(
                            "stored values must be non-zero (0 is the "
                            "initial value)"
                        )
                    if value in values:
                        raise MalformedProgramError(
                            f"duplicate stored value {value}"
                        )
                    values[value] = self.name
                if instruction.reads:
                    register = instruction.register  # type: ignore[union-attr]
                    if register in registers:
                        raise MalformedProgramError(
                            f"duplicate register {register!r}"
                        )
                    registers.append(register)
        for index in self.observer_threads:
            if not 0 <= index < len(self.threads):
                raise MalformedProgramError(
                    f"observer thread index {index} out of range"
                )
            for instruction in self.threads[index]:
                if instruction.writes:
                    raise MalformedProgramError(
                        "observer threads must not write"
                    )

    # -- structure ------------------------------------------------------

    @property
    def thread_count(self) -> int:
        return len(self.threads)

    @property
    def testing_threads(self) -> Tuple[int, ...]:
        """Indices of the non-observer threads."""
        return tuple(
            index
            for index in range(self.thread_count)
            if index not in self.observer_threads
        )

    @property
    def locations(self) -> Tuple[Location, ...]:
        seen: List[Location] = []
        for thread in self.threads:
            for instruction in thread:
                if instruction.is_memory_access:
                    location = instruction.location  # type: ignore[union-attr]
                    if location not in seen:
                        seen.append(location)
        return tuple(seen)

    @property
    def registers(self) -> Tuple[str, ...]:
        return tuple(
            instruction.register  # type: ignore[union-attr]
            for thread in self.threads
            for instruction in thread
            if instruction.reads
        )

    @property
    def uses_fences(self) -> bool:
        return any(
            isinstance(instruction, Fence)
            for thread in self.threads
            for instruction in thread
        )

    def instructions(self) -> Iterator[Tuple[int, int, Instruction]]:
        """Yield ``(thread, index, instruction)`` in program order."""
        for thread_index, thread in enumerate(self.threads):
            for index, instruction in enumerate(thread):
                yield thread_index, index, instruction

    # -- bridge to the formal model --------------------------------------

    def event_threads(self) -> List[List[Event]]:
        """Per-thread event skeletons with stable uids and labels.

        Event uid equals the instruction's global index in program
        order, so the instruction ↔ event correspondence is one-to-one
        and reproducible.
        """
        result: List[List[Event]] = []
        uid = 0
        label_index = 0
        for thread_index, thread in enumerate(self.threads):
            events: List[Event] = []
            for instruction in thread:
                label = chr(ord("a") + label_index % 26)
                events.append(instruction.to_event(uid, thread_index, label))
                uid += 1
                label_index += 1
            result.append(events)
        return result

    def register_events(self, execution: Execution) -> Dict[str, Event]:
        """Map each register to the reading event that defines it.

        Works for any execution over this test's event skeleton (events
        are matched by uid, i.e. instruction position).
        """
        by_uid = {event.uid: event for event in execution.events}
        result: Dict[str, Event] = {}
        uid = 0
        for thread in self.threads:
            for instruction in thread:
                if instruction.reads:
                    result[instruction.register] = by_uid[uid]  # type: ignore[union-attr]
                uid += 1
        return result

    # -- transformation helpers used by mutators --------------------------

    def with_threads(
        self, threads: Sequence[Sequence[Instruction]], name: str,
        description: str = "",
    ) -> "LitmusTest":
        """A copy with new instructions (same model/target/observers)."""
        return LitmusTest(
            name=name,
            threads=threads,
            model=self.model,
            target=self.target,
            observer_threads=sorted(self.observer_threads),
            description=description or self.description,
        )

    def with_target(self, target: BehaviorSpec) -> "LitmusTest":
        return LitmusTest(
            name=self.name,
            threads=self.threads,
            model=self.model,
            target=target,
            observer_threads=sorted(self.observer_threads),
            description=self.description,
        )

    # -- rendering --------------------------------------------------------

    def pretty(self) -> str:
        lines = [f"test {self.name} (model: {self.model})"]
        for index, thread in enumerate(self.threads):
            role = " (observer)" if index in self.observer_threads else ""
            lines.append(f"  thread {index}{role}:")
            for instruction in thread:
                lines.append(f"    {instruction.pretty()}")
        if self.target is not None:
            lines.append(f"  target: {self.target.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"LitmusTest({self.name!r}, threads={self.thread_count})"
