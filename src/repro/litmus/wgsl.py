"""WGSL shader-text generation for litmus tests.

The paper's harness dispatches WebGPU compute shaders written in WGSL
(Sec. 2.3).  This module renders any :class:`~repro.litmus.program.LitmusTest`
into the shader the harness would run, following the structure of the
paper's artifact (the ``webgpu-litmus`` page):

* one storage buffer of atomics for test locations,
* one storage buffer for read results,
* a shuffled-ids buffer so thread-to-test assignment is indirected,
* per-thread instruction blocks selected by the permuted instance id.

The simulator interprets the litmus IR directly, so this generator
exists to preserve the artifact's real interface — examples export the
shaders, and tests validate their structure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
    Instruction,
)
from repro.litmus.program import LitmusTest

_HEADER = """\
// Auto-generated WGSL litmus shader: {name}
// model: {model}

struct TestLocations {{
  value: array<atomic<u32>>
}};

struct ReadResults {{
  value: array<u32>
}};

struct ShuffledIds {{
  value: array<u32>
}};

struct StressParams {{
  do_barrier: u32,
  mem_stress: u32,
  mem_stress_iterations: u32,
  mem_stress_pattern: u32,
  pre_stress: u32,
  pre_stress_iterations: u32,
  pre_stress_pattern: u32,
  permute_first: u32,
  permute_second: u32,
  testing_workgroups: u32,
}};

@group(0) @binding(0) var<storage, read_write> test_locations : TestLocations;
@group(0) @binding(1) var<storage, read_write> results : ReadResults;
@group(0) @binding(2) var<storage, read_write> shuffled_workgroups : ShuffledIds;
@group(0) @binding(3) var<storage, read_write> scratchpad : TestLocations;
@group(0) @binding(4) var<uniform> stress_params : StressParams;
"""

_PERMUTE_FN = """
fn permute_id(id: u32, factor: u32, mask: u32) -> u32 {
  return (id * factor) % mask;
}

fn stripe_workgroup(workgroup_id: u32, local_id: u32) -> u32 {
  return (workgroup_id + 1u + local_id % (stress_params.testing_workgroups - 1u)) % stress_params.testing_workgroups;
}
"""

_STRESS_FN = """
fn do_stress(iterations: u32, pattern: u32, workgroup_id: u32) {
  for (var i: u32 = 0u; i < iterations; i = i + 1u) {
    switch (pattern) {
      case 0u: {
        atomicStore(&scratchpad.value[workgroup_id], i);
        atomicStore(&scratchpad.value[workgroup_id], i + 1u);
      }
      case 1u: {
        atomicStore(&scratchpad.value[workgroup_id], i);
        let tmp1 = atomicLoad(&scratchpad.value[workgroup_id]);
      }
      case 2u: {
        let tmp1 = atomicLoad(&scratchpad.value[workgroup_id]);
        atomicStore(&scratchpad.value[workgroup_id], i);
      }
      default: {
        let tmp1 = atomicLoad(&scratchpad.value[workgroup_id]);
        let tmp2 = atomicLoad(&scratchpad.value[workgroup_id]);
      }
    }
  }
}
"""


class WgslGenerator:
    """Render litmus tests as WGSL compute shaders."""

    def __init__(self, workgroup_size: int = 256) -> None:
        if workgroup_size <= 0:
            raise ValueError("workgroup_size must be positive")
        self.workgroup_size = workgroup_size

    # -- per-instruction lowering ----------------------------------------

    def _location_expr(self, test: LitmusTest, location_name: str) -> str:
        index = [loc.name for loc in test.locations].index(location_name)
        if index == 0:
            return "x_loc"
        return f"{location_name}_loc"

    def _lower(
        self, test: LitmusTest, instruction: Instruction, registers: Dict[str, int]
    ) -> str:
        if isinstance(instruction, AtomicLoad):
            slot = registers[instruction.register]
            loc = self._location_expr(test, instruction.location.name)
            return (
                f"results.value[instance * {len(registers)}u + {slot}u] = "
                f"atomicLoad(&test_locations.value[{loc}]);"
            )
        if isinstance(instruction, AtomicStore):
            loc = self._location_expr(test, instruction.location.name)
            return (
                f"atomicStore(&test_locations.value[{loc}], "
                f"{instruction.value}u);"
            )
        if isinstance(instruction, AtomicExchange):
            slot = registers[instruction.register]
            loc = self._location_expr(test, instruction.location.name)
            return (
                f"results.value[instance * {len(registers)}u + {slot}u] = "
                f"atomicExchange(&test_locations.value[{loc}], "
                f"{instruction.value}u);"
            )
        if isinstance(instruction, Fence):
            # Polymorphic: scoped barriers (repro.scopes) render as
            # workgroupBarrier(); the plain fence as storageBarrier().
            return instruction.pretty() + ";"
        raise TypeError(f"unknown instruction {instruction!r}")

    # -- whole-shader generation -----------------------------------------

    def generate(self, test: LitmusTest) -> str:
        """The WGSL compute shader for ``test``."""
        registers = {name: i for i, name in enumerate(test.registers)}
        lines: List[str] = [
            _HEADER.format(name=test.name, model=test.model),
            _PERMUTE_FN,
            _STRESS_FN,
            f"@compute @workgroup_size({self.workgroup_size})",
            "fn main(@builtin(workgroup_id) wgid : vec3<u32>,",
            "        @builtin(local_invocation_id) lid : vec3<u32>) {",
            "  let shuffled = shuffled_workgroups.value[wgid.x];",
            "  if (shuffled < stress_params.testing_workgroups) {",
            f"    let global = shuffled * {self.workgroup_size}u + lid.x;",
            "    let total = stress_params.testing_workgroups * "
            f"{self.workgroup_size}u;",
            "    let instance = permute_id(global, "
            "stress_params.permute_first, total);",
            "    if (stress_params.pre_stress == 1u) {",
            "      do_stress(stress_params.pre_stress_iterations, "
            "stress_params.pre_stress_pattern, wgid.x);",
            "    }",
            "    if (stress_params.do_barrier == 1u) {",
            "      storageBarrier();",
            "    }",
        ]
        location_names = [loc.name for loc in test.locations]
        stride = len(location_names)
        for index, name in enumerate(location_names):
            if index == 0:
                lines.append(
                    f"    let x_loc = instance * {stride}u;"
                )
            else:
                lines.append(
                    f"    let {name}_loc = permute_id(instance, "
                    f"stress_params.permute_second, total) * {stride}u "
                    f"+ {index}u;"
                )
        for thread_index in test.testing_threads:
            keyword = "if" if thread_index == 0 else "else if"
            lines.append(
                f"    {keyword} (global % {len(test.testing_threads)}u == "
                f"{thread_index}u) {{"
            )
            for instruction in test.threads[thread_index]:
                lines.append(
                    "      " + self._lower(test, instruction, registers)
                )
            lines.append("    }")
        for observer_index in sorted(test.observer_threads):
            lines.append(f"    // observer thread {observer_index}")
            lines.append("    else {")
            for instruction in test.threads[observer_index]:
                lines.append(
                    "      " + self._lower(test, instruction, registers)
                )
            lines.append("    }")
        lines += [
            "  } else if (stress_params.mem_stress == 1u) {",
            "    do_stress(stress_params.mem_stress_iterations, "
            "stress_params.mem_stress_pattern, wgid.x);",
            "  }",
            "}",
        ]
        return "\n".join(lines) + "\n"


def generate_wgsl(test: LitmusTest, workgroup_size: int = 256) -> str:
    """Convenience wrapper around :class:`WgslGenerator`."""
    return WgslGenerator(workgroup_size).generate(test)
