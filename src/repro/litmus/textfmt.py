"""A textual litmus-test format, in the spirit of herdtools' ``.litmus``.

Litmus tests are traditionally exchanged as small text files (the
``litmus`` tool of Alglave et al., which the paper builds on, defined
the de-facto format).  This module provides a WGSL-flavoured dialect
so suites can be inspected, stored, and re-parsed:

.. code-block:: none

    WGSL corr
    "read-read coherence: reads must not go backwards"
    model sc-per-location
    { }
    thread 0:
      r0 = atomicLoad(x);
      r1 = atomicLoad(x);
    thread 1:
      atomicStore(x, 1);
    exists (r0 == 1 /\\ r1 == 0)

Grammar notes:

* the ``exists`` clause lists read-register constraints and coherence
  constraints (``co(1 < 2)``) joined by ``/\\`` — exactly the
  information a :class:`~repro.litmus.program.BehaviorSpec` holds;
* ``observer N`` lines flag observer threads;
* the empty ``{ }`` initial-state block is kept for familiarity (all
  memory is zero-initialised, as in the paper).

``parse`` and ``format_test`` are inverses up to whitespace; the test
suite round-trips the whole generated suite through them.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import MalformedProgramError
from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
    Instruction,
)
from repro.litmus.program import BehaviorSpec, LitmusTest
from repro.memory_model.events import Location
from repro.memory_model.models import model_by_name

_HEADER = re.compile(r"^WGSL\s+(?P<name>\S+)\s*$")
_THREAD = re.compile(r"^thread\s+(?P<index>\d+)\s*:\s*$")
_OBSERVER = re.compile(r"^observer\s+(?P<index>\d+)\s*$")
_MODEL = re.compile(r"^model\s+(?P<model>[\w\-]+)\s*$")
_PLACEMENT = re.compile(r"^placement\s+(?P<groups>\d+(\s+\d+)*)\s*$")
_LOAD = re.compile(
    r"^(?P<register>\w+)\s*=\s*atomicLoad\((?P<location>\w+)\)\s*;?$"
)
_STORE = re.compile(
    r"^atomicStore\((?P<location>\w+)\s*,\s*(?P<value>\d+)\)\s*;?$"
)
_EXCHANGE = re.compile(
    r"^(?P<register>\w+)\s*=\s*atomicExchange\((?P<location>\w+)\s*,\s*"
    r"(?P<value>\d+)\)\s*;?$"
)
_FENCE = re.compile(r"^storageBarrier\(\)\s*;?$")
_WG_BARRIER = re.compile(r"^workgroupBarrier\(\)\s*;?$")
_EXISTS = re.compile(r"^exists\s*\((?P<body>.*)\)\s*$")
_READ_CONSTRAINT = re.compile(r"^(?P<register>\w+)\s*==\s*(?P<value>\d+)$")
_CO_CONSTRAINT = re.compile(
    r"^co\(\s*(?P<earlier>\d+)\s*<\s*(?P<later>\d+)\s*\)$"
)


def format_test(test: LitmusTest) -> str:
    """Render a litmus test in the textual format."""
    lines: List[str] = [f"WGSL {test.name}"]
    if test.description:
        lines.append(f'"{test.description}"')
    lines.append(f"model {test.model.name}")
    placement = getattr(test.model, "placement", None)
    if placement is not None:
        groups = " ".join(str(g) for g in placement.workgroups)
        lines.append(f"placement {groups}")
    lines.append("{ }")
    for index, thread in enumerate(test.threads):
        lines.append(f"thread {index}:")
        for instruction in thread:
            lines.append(f"  {instruction.pretty()};")
    for index in sorted(test.observer_threads):
        lines.append(f"observer {index}")
    if test.target is not None:
        constraints = [
            f"{register} == {value}"
            for register, value in sorted(test.target.reads.items())
        ]
        constraints += [
            f"co({earlier} < {later})"
            for earlier, later in test.target.co
        ]
        joined = " /\\ ".join(constraints)
        lines.append(f"exists ({joined})")
    return "\n".join(lines) + "\n"


def _parse_instruction(line: str) -> Instruction:
    match = _LOAD.match(line)
    if match:
        return AtomicLoad(
            Location(match["location"]), match["register"]
        )
    match = _STORE.match(line)
    if match:
        return AtomicStore(
            Location(match["location"]), int(match["value"])
        )
    match = _EXCHANGE.match(line)
    if match:
        return AtomicExchange(
            Location(match["location"]),
            int(match["value"]),
            match["register"],
        )
    if _FENCE.match(line):
        return Fence()
    if _WG_BARRIER.match(line):
        # Imported lazily: repro.scopes depends on repro.litmus, so a
        # module-level import here would be circular.
        from repro.scopes.instructions import ControlBarrier

        return ControlBarrier()
    raise MalformedProgramError(f"cannot parse instruction: {line!r}")


def _parse_exists(body: str) -> BehaviorSpec:
    reads: Dict[str, int] = {}
    co: List[Tuple[int, int]] = []
    body = body.strip()
    if not body:
        return BehaviorSpec()
    for raw in re.split(r"/\\", body):
        clause = raw.strip()
        match = _READ_CONSTRAINT.match(clause)
        if match:
            reads[match["register"]] = int(match["value"])
            continue
        match = _CO_CONSTRAINT.match(clause)
        if match:
            co.append((int(match["earlier"]), int(match["later"])))
            continue
        raise MalformedProgramError(
            f"cannot parse exists clause: {clause!r}"
        )
    return BehaviorSpec(reads=reads, co=tuple(co))


def parse(text: str) -> LitmusTest:
    """Parse the textual format back into a :class:`LitmusTest`.

    Raises:
        MalformedProgramError: On any syntax or structural problem.
    """
    name: Optional[str] = None
    description = ""
    model = None
    model_name: Optional[str] = None
    placement_groups: Optional[List[int]] = None
    threads: List[List[Instruction]] = []
    observers: List[int] = []
    target: Optional[BehaviorSpec] = None
    current: Optional[List[Instruction]] = None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line == "{ }":
            continue
        header = _HEADER.match(line)
        if header:
            name = header["name"]
            continue
        if line.startswith('"') and line.endswith('"') and len(line) >= 2:
            description = line[1:-1]
            continue
        model_match = _MODEL.match(line)
        if model_match:
            model_name = model_match["model"]
            if model_name != "scoped-rel-acq-sc-per-location":
                try:
                    model = model_by_name(model_name)
                except KeyError as error:
                    raise MalformedProgramError(str(error))
            continue
        placement_match = _PLACEMENT.match(line)
        if placement_match:
            placement_groups = [
                int(group)
                for group in placement_match["groups"].split()
            ]
            continue
        thread_match = _THREAD.match(line)
        if thread_match:
            index = int(thread_match["index"])
            if index != len(threads):
                raise MalformedProgramError(
                    f"thread {index} out of order (expected "
                    f"{len(threads)})"
                )
            current = []
            threads.append(current)
            continue
        observer_match = _OBSERVER.match(line)
        if observer_match:
            observers.append(int(observer_match["index"]))
            current = None
            continue
        exists_match = _EXISTS.match(line)
        if exists_match:
            target = _parse_exists(exists_match["body"])
            current = None
            continue
        if current is None:
            raise MalformedProgramError(
                f"instruction outside a thread block: {line!r}"
            )
        current.append(_parse_instruction(line))

    if name is None:
        raise MalformedProgramError("missing 'WGSL <name>' header")
    if model_name == "scoped-rel-acq-sc-per-location":
        if placement_groups is None:
            raise MalformedProgramError(
                "scoped model requires a 'placement ...' line"
            )
        # Imported lazily: repro.scopes depends on repro.litmus.
        from repro.scopes.model import scoped_model
        from repro.scopes.placement import Placement

        model = scoped_model(threads, Placement(placement_groups))
    if model is None:
        raise MalformedProgramError("missing 'model <name>' line")
    if not threads:
        raise MalformedProgramError("no thread blocks found")
    return LitmusTest(
        name=name,
        threads=threads,
        model=model,
        target=target,
        observer_threads=observers,
        description=description,
    )
