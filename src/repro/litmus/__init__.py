"""Litmus tests: instruction IR, outcomes, oracle, and classic library.

A litmus test is a small concurrent program plus a behaviour of
interest (Sec. 2.2).  This package provides the syntactic side of the
system: programs built from four instructions, observable outcomes,
the enumeration-backed oracle that classifies them, a library of the
classic tests the paper names, and WGSL shader generation matching the
paper's WebGPU artifact.
"""

from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
    Instruction,
)
from repro.litmus.oracle import TestOracle
from repro.litmus.outcomes import (
    Outcome,
    OutcomeHistogram,
    outcome_of_execution,
)
from repro.litmus.program import BehaviorSpec, LitmusTest
from repro.litmus.wgsl import WgslGenerator, generate_wgsl
from repro.litmus import extended, library, textfmt
from repro.litmus.textfmt import format_test, parse as parse_litmus

__all__ = [
    "AtomicExchange",
    "AtomicLoad",
    "AtomicStore",
    "BehaviorSpec",
    "Fence",
    "Instruction",
    "LitmusTest",
    "Outcome",
    "OutcomeHistogram",
    "TestOracle",
    "WgslGenerator",
    "extended",
    "format_test",
    "generate_wgsl",
    "library",
    "outcome_of_execution",
    "parse_litmus",
    "textfmt",
]
