"""The testing oracle: classifying outcomes against the memory model.

Built once per test by exhaustively enumerating candidate executions
(:mod:`repro.memory_model.enumeration`) and projecting them onto
observable outcomes, the oracle answers two questions in O(1) at
runtime:

* **Is this outcome a conformance violation?**  Yes iff *no* allowed
  candidate execution explains the observables.
* **Does this outcome witness the test's target behaviour?**  Yes iff
  the observables are produced by some target-class execution and by
  *no* execution outside the class — i.e. the signature is an
  unambiguous witness.  This is what "killing a mutant" means
  operationally.

The oracle also powers a key validity check from Sec. 3 of the paper:
a conformance test's target behaviour must be *disallowed* and its
mutant's target behaviour must be *allowed*; see :meth:`TestOracle.target_allowed`.
"""

from __future__ import annotations

from functools import cached_property
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.errors import WitnessError
from repro.litmus.outcomes import Outcome, Signature, outcome_of_execution
from repro.litmus.program import LitmusTest
from repro.memory_model.enumeration import enumerate_executions
from repro.memory_model.execution import Execution


class TestOracle:
    """Ground-truth outcome classification for one litmus test."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, test: LitmusTest) -> None:
        self.test = test
        self._allowed_signatures: Set[Signature] = set()
        self._target_signatures: Set[Signature] = set()
        self._nontarget_signatures: Set[Signature] = set()
        self._target_allowed: Optional[bool] = None
        self._analyze()

    def _analyze(self) -> None:
        threads = self.test.event_threads()
        target = self.test.target
        target_seen = False
        for execution in enumerate_executions(threads):
            signature = outcome_of_execution(self.test, execution).signature()
            allowed = self.test.model.allows(execution)
            if allowed:
                self._allowed_signatures.add(signature)
            if target is not None:
                if target.matches(self.test, execution):
                    target_seen = True
                    self._target_signatures.add(signature)
                    # The behaviour is *allowed* iff some allowed
                    # execution realises it.  (The class may also
                    # contain disallowed members — e.g. variants with
                    # incoherent observer reads — which do not make the
                    # behaviour itself illegal.)
                    if allowed:
                        self._target_allowed = True
                    elif self._target_allowed is None:
                        self._target_allowed = False
                elif allowed:
                    # Only *allowed* non-target executions make a witness
                    # ambiguous: disallowed look-alikes cannot occur on a
                    # conforming implementation, and on a buggy one they
                    # are bugs worth counting anyway.
                    self._nontarget_signatures.add(signature)
        if target is not None and not target_seen:
            raise WitnessError(
                f"test {self.test.name!r}: no candidate execution realises "
                f"target behaviour {target.describe()}"
            )
        # Unambiguous witnesses only.
        self._target_signatures -= self._nontarget_signatures
        if target is not None and not self._target_signatures:
            raise WitnessError(
                f"test {self.test.name!r}: target behaviour "
                f"{target.describe()} has no unambiguous observable "
                f"witness; add an observer thread"
            )

    # -- classification ---------------------------------------------------

    @property
    def allowed_signatures(self) -> FrozenSet[Signature]:
        return frozenset(self._allowed_signatures)

    @property
    def target_signatures(self) -> FrozenSet[Signature]:
        """Signatures that unambiguously witness the target behaviour."""
        return frozenset(self._target_signatures)

    def target_allowed(self) -> bool:
        """Whether the target behaviour is legal under the test's model.

        For a conformance test this must be False; for a mutant, True.
        """
        if self.test.target is None:
            raise WitnessError(
                f"test {self.test.name!r} has no target behaviour"
            )
        assert self._target_allowed is not None
        return self._target_allowed

    def is_violation(self, outcome: Outcome) -> bool:
        """True iff no allowed candidate execution explains ``outcome``."""
        return outcome.signature() not in self._allowed_signatures

    def matches_target(self, outcome: Outcome) -> bool:
        """True iff ``outcome`` unambiguously witnesses the target.

        For mutants this is the *kill* predicate; for conformance tests
        it identifies the specific disallowed behaviour of interest
        (used by the correlation analysis, Sec. 5.4).
        """
        return outcome.signature() in self._target_signatures

    def is_interesting(self, outcome: Outcome) -> bool:
        """Violation or target witness — what a test run tallies."""
        return self.is_violation(outcome) or self.matches_target(outcome)

    # -- diagnostics --------------------------------------------------------

    @cached_property
    def witness_executions(self) -> Tuple[Execution, ...]:
        """Target-class executions whose outcomes are unambiguous."""
        if self.test.target is None:
            return ()
        result: List[Execution] = []
        for execution in enumerate_executions(self.test.event_threads()):
            if not self.test.target.matches(self.test, execution):
                continue
            signature = outcome_of_execution(self.test, execution).signature()
            if signature in self._target_signatures:
                result.append(execution)
        return tuple(result)

    def describe(self) -> str:
        lines = [
            f"oracle for {self.test.name}:",
            f"  allowed outcome signatures: {len(self._allowed_signatures)}",
        ]
        if self.test.target is not None:
            legality = "allowed" if self.target_allowed() else "DISALLOWED"
            lines.append(
                f"  target ({self.test.target.describe()}): {legality}, "
                f"{len(self._target_signatures)} witness signature(s)"
            )
        return "\n".join(lines)
