"""MCS Test Confidence (Sec. 4.2): reproducibility, merging, curation.

Turns raw mutant death rates into statistical confidence: the
``1 - e^{-x}`` reproducibility score, Algorithm 1's cross-device
environment merging, and the CTS curation that the official WebGPU
conformance suite adopted.
"""

from repro.confidence.cts import CtsEntry, CtsPlan, curate
from repro.confidence.merge import (
    MergeDecision,
    merge_environments,
    merge_suite,
    reproducible_pairs,
    tuning_rate_function,
)
from repro.confidence.reproducibility import (
    TARGET_FLOOR,
    TARGET_MAX,
    ceiling_rate,
    expected_runs_until_clean,
    reproducibility_score,
    required_kills,
    score_at_budget,
    total_reproducibility,
)

__all__ = [
    "CtsEntry",
    "CtsPlan",
    "MergeDecision",
    "TARGET_FLOOR",
    "TARGET_MAX",
    "ceiling_rate",
    "curate",
    "expected_runs_until_clean",
    "merge_environments",
    "merge_suite",
    "reproducibility_score",
    "reproducible_pairs",
    "required_kills",
    "score_at_budget",
    "total_reproducibility",
    "tuning_rate_function",
]
