"""Conformance-test-suite curation (Sec. 4.2, Sec. 5.5).

The end product of the whole methodology: a set of litmus tests, each
paired with the single testing environment Algorithm 1 chose for it and
a per-test time budget, such that the suite reaches a target *total*
reproducibility.  This is what the paper contributed to the official
WebGPU CTS — MCS tests that run in about a minute on desktop hardware
with a quantified chance of catching the bugs the mutants model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.confidence.merge import MergeDecision, merge_suite
from repro.confidence.reproducibility import score_at_budget
from repro.env.tuning import TuningResult
from repro.errors import AnalysisError
from repro.mutation.suite import MutationSuite


@dataclass(frozen=True)
class CtsEntry:
    """One conformance test scheduled into the CTS."""

    conformance_name: str
    mutant_name: str
    decision: MergeDecision
    budget_seconds: float

    @property
    def environment_name(self) -> Optional[str]:
        if self.decision.environment is None:
            return None
        return self.decision.environment.name

    def device_reproducibility(self, device: str) -> float:
        return self.decision.reproducibility(device, self.budget_seconds)

    def worst_reproducibility(self) -> float:
        if not self.decision.rates:
            return 0.0
        return min(
            self.device_reproducibility(device)
            for device in self.decision.rates
        )


@dataclass(frozen=True)
class CtsPlan:
    """A curated MCS test suite with its confidence accounting."""

    entries: Tuple[CtsEntry, ...]
    reproducibility_target: float
    budget_seconds: float

    @property
    def total_budget_seconds(self) -> float:
        return self.budget_seconds * len(self.entries)

    def total_reproducibility(
        self, device: str, observable_only: bool = True
    ) -> float:
        """P(one CTS run on ``device`` kills every scheduled mutant).

        With ``observable_only`` (the default), entries whose behaviour
        the device never exhibits (rate 0 — Sec. 3.4's "specification
        more permissive than the implementation") are excluded: a CTS
        cannot be expected to reproduce what the hardware cannot show.
        """
        probability = 1.0
        for entry in self.entries:
            rate = entry.decision.rates.get(device, 0.0)
            if observable_only and rate == 0.0:
                continue
            probability *= entry.device_reproducibility(device)
        return probability

    def worst_case_total(self, observable_only: bool = True) -> float:
        """Total reproducibility using each entry's worst device."""
        probability = 1.0
        for entry in self.entries:
            rates = [
                rate
                for rate in entry.decision.rates.values()
                if not (observable_only and rate == 0.0)
            ]
            if not rates:
                continue
            probability *= min(
                score_at_budget(rate, self.budget_seconds)
                for rate in rates
            )
        return probability

    def scheduled(self) -> List[CtsEntry]:
        """Entries that actually found an environment."""
        return [
            entry
            for entry in self.entries
            if entry.decision.environment is not None
        ]

    def describe(self) -> str:
        lines = [
            f"CTS plan: {len(self.scheduled())}/{len(self.entries)} tests "
            f"scheduled, {self.budget_seconds:g}s each "
            f"({self.total_budget_seconds:g}s total), target "
            f"{self.reproducibility_target:%} per test",
        ]
        for entry in self.entries:
            env = entry.environment_name or "<no environment found>"
            lines.append(
                f"  {entry.conformance_name:24s} via {entry.mutant_name:28s} "
                f"env={env:20s} worst-device rep="
                f"{entry.worst_reproducibility():.6f}"
            )
        return "\n".join(lines)


def curate(
    suite: MutationSuite,
    result: TuningResult,
    reproducibility_target: float,
    budget_seconds: float,
) -> CtsPlan:
    """Build a CTS plan from a tuning result.

    For each conformance test, the mutant with the best merged
    environment (most devices at ceiling, then highest minimum
    non-zero rate) represents it: the environment that reliably kills
    the mutant is the environment most likely to reveal the
    corresponding real bug (Sec. 5.4).
    """
    if not result.runs:
        raise AnalysisError("tuning result is empty")
    from repro import obs

    rec = obs.recorder()
    span = rec.span("confidence.curate", pairs=len(suite.pairs))
    entries: List[CtsEntry] = []
    with span:
        _curate_pairs(
            suite, result, reproducibility_target, budget_seconds,
            entries,
        )
    rec.counter_inc(
        "repro_confidence_curated_total", len(entries)
    )
    return CtsPlan(
        entries=tuple(entries),
        reproducibility_target=reproducibility_target,
        budget_seconds=budget_seconds,
    )


def _curate_pairs(
    suite: MutationSuite,
    result: TuningResult,
    reproducibility_target: float,
    budget_seconds: float,
    entries: List[CtsEntry],
) -> None:
    for pair in suite.pairs:
        mutant_names = [mutant.name for mutant in pair.mutants]
        decisions = merge_suite(
            result, mutant_names, reproducibility_target, budget_seconds
        )
        best = max(
            decisions,
            key=lambda decision: (
                decision.devices_at_ceiling,
                decision.min_nonzero_rate
                if decision.min_nonzero_rate != float("inf")
                else 0.0,
            ),
        )
        entries.append(
            CtsEntry(
                conformance_name=pair.conformance.name,
                mutant_name=best.test_name,
                decision=best,
                budget_seconds=budget_seconds,
            )
        )
