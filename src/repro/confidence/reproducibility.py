"""Reproducibility scores (Sec. 4.2).

Prior work derived that if a behaviour was observed ``x`` times in a
test run, the probability that an identical subsequent run observes it
at least once is ``1 - e^{-x}`` — the *reproducibility score*.  MCS
Test Confidence builds on this:

* the inverse gives the kill count a run must reach for a target score
  (``ceil(-ln(1 - r))``, line 7 of Algorithm 1);
* dividing by a time budget turns that into a *ceiling rate* a test
  environment must sustain;
* multiplying per-test scores gives the *total reproducibility* of a
  conformance test suite, which is why the paper recommends 99.999%
  per test (95% per test would make a 20-test CTS flaky: ``0.95^20 ≈
  35.8%``).
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError


def reproducibility_score(kills: int) -> float:
    """P(a subsequent identical run kills at least once) = 1 - e^-x."""
    if kills < 0:
        raise AnalysisError("kill count must be non-negative")
    return 1.0 - math.exp(-kills)


def required_kills(score: float) -> int:
    """The smallest kill count whose reproducibility reaches ``score``.

    The inverse of :func:`reproducibility_score`, rounded up (line 7 of
    Algorithm 1 uses the ceiling).
    """
    _check_score(score)
    return math.ceil(-math.log(1.0 - score))


def ceiling_rate(score: float, budget_seconds: float) -> float:
    """Kills/second a test environment must sustain for the target.

    ``ceil(-ln(1-r)) / b`` — Algorithm 1, line 7.
    """
    if budget_seconds <= 0.0:
        raise AnalysisError("time budget must be positive")
    return required_kills(score) / budget_seconds


def score_at_budget(rate: float, budget_seconds: float) -> float:
    """Reproducibility of a run of length ``budget_seconds`` given a
    sustained kill rate (expected kills = rate × budget)."""
    if rate < 0.0:
        raise AnalysisError("rate must be non-negative")
    if budget_seconds <= 0.0:
        raise AnalysisError("time budget must be positive")
    return 1.0 - math.exp(-rate * budget_seconds)


def total_reproducibility(per_test_score: float, test_count: int) -> float:
    """P(one CTS run kills *every* mutant) = score^n (Sec. 4.2)."""
    _check_score(per_test_score, allow_one=True)
    if test_count < 0:
        raise AnalysisError("test count must be non-negative")
    return per_test_score ** test_count

def expected_runs_until_clean(total_score: float) -> float:
    """Mean CTS executions until one kills every mutant (geometric)."""
    if not 0.0 < total_score <= 1.0:
        raise AnalysisError("total score must be in (0, 1]")
    return 1.0 / total_score


def _check_score(score: float, allow_one: bool = False) -> None:
    upper_ok = score <= 1.0 if allow_one else score < 1.0
    if not (0.0 <= score and upper_ok):
        bound = "[0, 1]" if allow_one else "[0, 1)"
        raise AnalysisError(f"score must be in {bound}, got {score}")


#: The paper's two reference targets (Sec. 5.3): 95% is the floor
#: (3 kills per budget; total reproducibility 36.5% over 20 tests),
#: 99.999% the recommended maximum (total 99.98%).
TARGET_FLOOR = 0.95
TARGET_MAX = 0.99999
