"""Algorithm 1: merging test environments across devices (Sec. 4.2).

A CTS ships *one* environment per test, chosen at contribution time
without knowing the devices it will later run on.  Algorithm 1 picks,
for each mutant, the candidate environment that reaches the target
ceiling rate on the most devices; ties break toward the largest
minimum non-zero rate, which maximises residual confidence on devices
that missed the ceiling and makes the choice *stable* (rerunning with
a laxer target or larger budget keeps the same environment when the
current one already meets the rate everywhere).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.confidence.reproducibility import ceiling_rate, score_at_budget
from repro.env.environment import TestingEnvironment
from repro.env.tuning import TuningResult
from repro.errors import AnalysisError

RateFunction = Callable[[str, str, TestingEnvironment], float]


@dataclass(frozen=True)
class MergeDecision:
    """The outcome of Algorithm 1 for one test."""

    test_name: str
    environment: Optional[TestingEnvironment]
    #: Devices on which the chosen environment meets the ceiling rate.
    devices_at_ceiling: int
    #: The minimum non-zero rate across devices (the tie-break metric).
    min_nonzero_rate: float
    #: Per-device rates under the chosen environment.
    rates: Dict[str, float]

    def reproducibility(self, device: str, budget_seconds: float) -> float:
        """The per-device reproducibility at the given budget."""
        return score_at_budget(self.rates.get(device, 0.0), budget_seconds)


def merge_environments(
    test_name: str,
    environments: Sequence[TestingEnvironment],
    devices: Sequence[str],
    rate: RateFunction,
    reproducibility_target: float,
    budget_seconds: float,
) -> MergeDecision:
    """Algorithm 1 of the paper, verbatim.

    Args:
        test_name: The mutant to choose an environment for (``t``).
        environments: Candidate environments (``E``).
        devices: Device names the mutant ran on (``D``).
        rate: ``rate(t, d, e)`` — the observed death rate.
        reproducibility_target: ``r`` in (0, 1).
        budget_seconds: ``b`` > 0.

    Returns:
        The chosen environment (or ``None`` if no environment reaches
        the ceiling rate on any device) plus its statistics.
    """
    if not 0.0 < reproducibility_target < 1.0:
        raise AnalysisError("reproducibility target must be in (0, 1)")
    if budget_seconds <= 0.0:
        raise AnalysisError("time budget must be positive")
    ceiling = ceiling_rate(reproducibility_target, budget_seconds)

    chosen: Optional[TestingEnvironment] = None
    chosen_count = 0
    chosen_min_rate = math.inf
    chosen_rates: Dict[str, float] = {}
    for environment in environments:
        count = 0
        min_rate = math.inf
        rates: Dict[str, float] = {}
        for device in devices:
            observed = rate(test_name, device, environment)
            rates[device] = observed
            if observed >= ceiling:
                count += 1
            if observed > 0.0:
                min_rate = min(min_rate, observed)
        better = count > chosen_count or (
            count == chosen_count and min_rate > chosen_min_rate
        )
        if better:
            chosen = environment
            chosen_count = count
            chosen_min_rate = min_rate
            chosen_rates = rates
    return MergeDecision(
        test_name=test_name,
        environment=chosen,
        devices_at_ceiling=chosen_count,
        min_nonzero_rate=chosen_min_rate,
        rates=chosen_rates,
    )


def tuning_rate_function(result: TuningResult) -> RateFunction:
    """Adapt a tuning result to Algorithm 1's ``rate()`` oracle."""

    def rate(
        test_name: str, device_name: str, environment: TestingEnvironment
    ) -> float:
        return result.rate(test_name, device_name, environment.env_key)

    return rate


def merge_suite(
    result: TuningResult,
    test_names: Sequence[str],
    reproducibility_target: float,
    budget_seconds: float,
) -> List[MergeDecision]:
    """Run Algorithm 1 for every test of a tuning result."""
    from repro import obs

    rate = tuning_rate_function(result)
    rec = obs.recorder()
    with rec.span("confidence.merge_suite", tests=len(test_names)):
        decisions = [
            merge_environments(
                test_name,
                result.environments,
                result.device_names,
                rate,
                reproducibility_target,
                budget_seconds,
            )
            for test_name in test_names
        ]
    rec.counter_inc(
        "repro_confidence_merges_total", len(decisions)
    )
    return decisions


def reproducible_pairs(
    decisions: Sequence[MergeDecision],
    reproducibility_target: float,
    budget_seconds: float,
    device_count: int,
) -> float:
    """Fraction of (test, device) pairs meeting the ceiling rate.

    This is the "mutation score" of Fig. 6: the mutants whose single
    merged environment reproduces their behaviour within the budget,
    counted per device.
    """
    if device_count <= 0:
        raise AnalysisError("device_count must be positive")
    if not decisions:
        return 0.0
    ceiling = ceiling_rate(reproducibility_target, budget_seconds)
    reached = sum(
        sum(1 for rate in decision.rates.values() if rate >= ceiling)
        for decision in decisions
    )
    return reached / (len(decisions) * device_count)
