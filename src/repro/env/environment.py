"""Testing environments: SITE and PTE (Sec. 4.1, Sec. 5.1).

A :class:`TestingEnvironment` packages a point in the stress-parameter
space with an execution style:

* **SITE** (single-instance testing environment, prior work): one test
  instance per iteration, with optional memory-stressing workgroups.
* **PTE** (parallel testing environment, this paper): every testing
  thread participates, instances assigned by the co-prime permutation;
  thousands of instances per iteration amortise the dispatch overhead.

The environment translates its parameters into the device model's
:class:`~repro.gpu.profiles.Workload` — the single point where stress
knobs meet device tendencies — and owns the per-iteration economics
(instances per iteration, simulated seconds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.env.parameters import (
    EnvironmentParameters,
    pte_baseline_parameters,
    random_parameters,
    site_baseline_parameters,
)
from repro.env.permutation import ParallelPermutation, coprime_to
from repro.errors import EnvironmentError_
from repro.gpu.device import Device
from repro.gpu.profiles import DeviceProfile, Workload
from repro.litmus.program import LitmusTest


class EnvironmentKind(enum.Enum):
    """The four environment families evaluated in Sec. 5.1."""

    SITE_BASELINE = "SITE Baseline"
    SITE = "SITE"
    PTE_BASELINE = "PTE Baseline"
    PTE = "PTE"

    @property
    def parallel(self) -> bool:
        return self in (EnvironmentKind.PTE, EnvironmentKind.PTE_BASELINE)

    @property
    def stressed(self) -> bool:
        return self in (EnvironmentKind.SITE, EnvironmentKind.PTE)


#: Iteration budgets used by the paper's tuning runs (Sec. 5.1).
DEFAULT_ITERATIONS = {
    EnvironmentKind.SITE_BASELINE: 300,
    EnvironmentKind.SITE: 300,
    EnvironmentKind.PTE_BASELINE: 100,
    EnvironmentKind.PTE: 100,
}


def _normalised_stress(pct: int, iterations: int, scale: int) -> float:
    """Stress intensity in [0, 1] from a percentage and loop count."""
    if pct == 0 or iterations == 0:
        return 0.0
    return (pct / 100.0) * min(1.0, (iterations / scale) ** 0.5)


@dataclass(frozen=True)
class TestingEnvironment:
    """One concrete testing environment (kind + parameters + key)."""

    kind: EnvironmentKind
    parameters: EnvironmentParameters
    #: Identifies the environment in jitter hashing and reports; tuning
    #: runs number their random environments 0..N-1.
    env_key: int = 0

    @property
    def name(self) -> str:
        return f"{self.kind.value}#{self.env_key}"

    # -- instance economics ------------------------------------------------

    def instances_per_iteration(self, test: LitmusTest) -> int:
        """How many test instances one iteration executes.

        PTE: every testing thread carries one instance (each thread
        runs one role of ``k`` different instances, Fig. 4).  SITE:
        exactly one instance regardless of device size.
        """
        if not self.kind.parallel:
            return 1
        return self.parameters.testing_threads

    def iterations(self) -> int:
        return DEFAULT_ITERATIONS[self.kind]

    # -- permutation plumbing ------------------------------------------------

    def instance_permutation(self, test: LitmusTest) -> ParallelPermutation:
        """The thread→instance permutation this environment uses."""
        size = self.instances_per_iteration(test)
        return ParallelPermutation(
            size, coprime_to(size, self.parameters.permute_first)
        )

    def location_permutation(self, test: LitmusTest) -> ParallelPermutation:
        size = self.instances_per_iteration(test)
        return ParallelPermutation(
            size, coprime_to(size, self.parameters.permute_second)
        )

    # -- the workload handed to the device model ------------------------------

    def workload(self, profile: DeviceProfile, test: LitmusTest) -> Workload:
        """Translate parameters into the device model's terms.

        The stress patterns and line sizes are scored against the
        profile's hidden optima (``pattern_affinity``) — this is what
        tuning runs implicitly search for.
        """
        params = self.parameters
        mem_stress = _normalised_stress(
            params.mem_stress_pct, params.mem_stress_iterations, 1024
        ) * min(1.0, 2.0 * params.stress_workgroup_fraction)
        pre_stress = _normalised_stress(
            params.pre_stress_pct, params.pre_stress_iterations, 128
        )
        dominant_pattern = (
            params.mem_stress_pattern
            if mem_stress >= pre_stress
            else params.pre_stress_pattern
        )
        affinity = profile.pattern_affinity(
            dominant_pattern, params.stress_line_exponent
        )
        location_spread = self._location_spread(test)
        cross_workgroup = self._cross_workgroup()
        return Workload(
            instances_in_flight=self.instances_per_iteration(test),
            mem_stress=mem_stress,
            pre_stress=pre_stress,
            pattern_affinity=affinity,
            location_spread=location_spread,
            cross_workgroup=cross_workgroup,
        )

    def _location_spread(self, test: LitmusTest) -> float:
        """Memory-location diversity from permutation and striding."""
        params = self.parameters
        permutation = self.location_permutation(test)
        base = 0.35 if permutation.is_degenerate else 0.85
        stride_bonus = min(0.1, 0.02 * (params.mem_stride - 1))
        shuffle_bonus = 0.05 * (params.shuffle_pct / 100.0)
        return min(1.0, base + stride_bonus + shuffle_bonus)

    def _cross_workgroup(self) -> float:
        """Fraction of instances whose threads span workgroups.

        With three or more testing workgroups striping puts every role
        in a distinct workgroup; with two, at least one pairing
        crosses (Sec. 4.1).  Barrier alignment sharpens the temporal
        overlap of the communicating threads.
        """
        params = self.parameters
        if params.testing_workgroups >= 3:
            base = 1.0
        elif params.testing_workgroups == 2:
            base = 0.75
        else:
            base = 0.3
        alignment = 0.9 + 0.1 * (params.barrier_pct / 100.0)
        return min(1.0, base * alignment)

    # -- timing ---------------------------------------------------------------

    def stress_level(self) -> float:
        params = self.parameters
        return max(
            _normalised_stress(
                params.mem_stress_pct, params.mem_stress_iterations, 1024
            ),
            _normalised_stress(
                params.pre_stress_pct, params.pre_stress_iterations, 128
            ),
        )

    def iteration_seconds(self, device: Device, test: LitmusTest) -> float:
        return device.iteration_seconds(
            self.instances_per_iteration(test), self.stress_level()
        )

    def describe(self) -> str:
        return f"{self.name}: {self.parameters.describe()}"


# -- constructors -------------------------------------------------------------


def site_baseline() -> TestingEnvironment:
    return TestingEnvironment(
        EnvironmentKind.SITE_BASELINE, site_baseline_parameters()
    )


def pte_baseline() -> TestingEnvironment:
    return TestingEnvironment(
        EnvironmentKind.PTE_BASELINE, pte_baseline_parameters()
    )


def random_environment(
    kind: EnvironmentKind,
    rng: np.random.Generator,
    env_key: int,
) -> TestingEnvironment:
    """One random tuning candidate of the given kind."""
    if not kind.stressed:
        raise EnvironmentError_(
            "baseline environments are fixed; use site_baseline()/"
            "pte_baseline()"
        )
    return TestingEnvironment(
        kind,
        random_parameters(rng, parallel=kind.parallel),
        env_key=env_key,
    )


def random_environments(
    kind: EnvironmentKind,
    count: int,
    seed: int,
) -> List[TestingEnvironment]:
    """A reproducible family of random environments (a tuning run)."""
    if count < 0:
        raise EnvironmentError_("count must be non-negative")
    rng = np.random.default_rng(seed)
    return [
        random_environment(kind, rng, env_key=index)
        for index in range(count)
    ]
