"""An operational PTE iteration: Fig. 4 executed for real.

The analytic runner treats a PTE iteration statistically; this module
*executes* one, at reduced scale, with all of Sec. 4.1's machinery:

* one simulated thread per test instance;
* thread ``t`` runs role ``j`` of instance ``perm^j(t)`` where ``perm``
  is the co-prime permutation — so the two halves of an instance land
  on unrelated threads and every role of every instance is covered
  exactly once;
* each instance gets its own memory locations, with the non-primary
  locations spread across the arena by the second permutation;
* optional stress threads hammer a scratchpad, perturbing scheduling
  and flush timing for everyone;
* all threads interleave over one shared store-buffer memory system,
  so instances genuinely interact (the contention PTE relies on).

Because it runs on the same memory subsystem as the single-instance
executor, coherence and fence ordering hold per instance by
construction; the test suite checks every per-instance outcome against
the enumeration oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.env.environment import TestingEnvironment
from repro.env.permutation import ParallelPermutation, coprime_to
from repro.errors import EnvironmentError_
from repro.gpu.bugs import BugSet, NO_BUGS
from repro.gpu.device import Device
from repro.gpu.executor import Op, OpKind, compile_test, reorder_pass
from repro.gpu.memory import CoherentMemory, StoreBuffer
from repro.gpu.profiles import ExecutionTuning
from repro.litmus.outcomes import Outcome
from repro.litmus.program import LitmusTest
from repro.memory_model.events import Location


def _instance_location(location: Location, instance: int) -> Location:
    return Location(f"{location.name}#{instance}")


def _instance_register(register: str, instance: int) -> str:
    return f"{register}@{instance}"


@dataclass
class _ThreadProgram:
    """The op stream one simulated thread executes (all its roles)."""

    thread: int
    ops: List[Op]


class ParallelIteration:
    """One PTE iteration executed operationally.

    Args:
        test: The litmus test (its thread count defines the roles).
        instance_count: Test instances (= simulated testing threads).
        tuning: Operational knobs, usually from
            ``device.tuning(environment.workload(...))``.
        instance_factor: The co-prime factor for thread→instance
            assignment (``permute_first``); snapped to co-primality.
        location_factor: The co-prime factor spreading non-primary
            locations (``permute_second``).
        stress_threads: Extra threads hammering the scratchpad.
        stress_ops: Scratchpad accesses per stress thread.
        bugs: Injected implementation bugs, as for the single-instance
            executor.
    """

    def __init__(
        self,
        test: LitmusTest,
        instance_count: int,
        tuning: ExecutionTuning,
        instance_factor: int = 419,
        location_factor: int = 1031,
        stress_threads: int = 0,
        stress_ops: int = 16,
        bugs: BugSet = NO_BUGS,
    ) -> None:
        if instance_count < 2:
            raise EnvironmentError_("need at least two instances")
        if stress_threads < 0 or stress_ops < 0:
            raise EnvironmentError_("stress settings must be >= 0")
        self.test = test
        self.instance_count = instance_count
        self.tuning = tuning
        self.bugs = bugs
        self.stress_threads = stress_threads
        self.stress_ops = stress_ops
        self.instance_permutation = ParallelPermutation(
            instance_count, coprime_to(instance_count, instance_factor)
        )
        self.location_permutation = ParallelPermutation(
            instance_count, coprime_to(instance_count, location_factor)
        )

    # -- assignment ---------------------------------------------------------

    def role_count(self) -> int:
        return self.test.thread_count

    def assignments(self) -> List[Tuple[int, ...]]:
        """Per-thread instance tuple: entry ``j`` is the instance whose
        role ``j`` the thread runs."""
        result = []
        for thread in range(self.instance_count):
            roles = []
            value = thread
            for _ in range(self.role_count()):
                roles.append(value)
                value = self.instance_permutation(value)
            result.append(tuple(roles))
        return result

    def _locations_for(self, instance: int) -> Dict[Location, Location]:
        """The arena locations of one instance.

        The first (primary) location is tied to the instance; the
        others are spread by the second permutation, so neighbouring
        instances do not use neighbouring memory (Sec. 4.1).
        """
        mapping: Dict[Location, Location] = {}
        for index, location in enumerate(self.test.locations):
            if index == 0:
                slot = instance
            else:
                slot = self.location_permutation(
                    (instance + index - 1) % self.instance_count
                )
            mapping[location] = _instance_location(location, slot)
        return mapping

    # -- program construction --------------------------------------------------

    def _role_ops(
        self,
        role: int,
        instance: int,
        rng: np.random.Generator,
    ) -> List[Op]:
        compiled = compile_test(self.test, self.bugs)
        reordered = reorder_pass(compiled, self.tuning, rng, self.bugs)
        locations = self._locations_for(instance)
        ops: List[Op] = []
        for op in reordered[role]:
            if op.kind is OpKind.FENCE:
                ops.append(Op(OpKind.FENCE))
                continue
            assert op.location is not None
            register = (
                _instance_register(op.register, instance)
                if op.register is not None
                else None
            )
            ops.append(
                Op(
                    op.kind,
                    locations[op.location],
                    value=op.value,
                    register=register,
                )
            )
        return ops

    def _stress_program(
        self, thread: int, rng: np.random.Generator
    ) -> _ThreadProgram:
        scratch_lines = max(1, self.instance_count // 16)
        ops: List[Op] = []
        for index in range(self.stress_ops):
            line = int(rng.integers(0, scratch_lines))
            location = Location(f"scratch#{line}")
            if (index + thread) % 2 == 0:
                ops.append(
                    Op(OpKind.STORE, location,
                       value=1_000_000 + thread * 10_000 + index)
                )
            else:
                ops.append(
                    Op(OpKind.LOAD, location,
                       register=f"stress{thread}_{index}")
                )
        return _ThreadProgram(thread=thread, ops=ops)

    def build_programs(
        self, rng: np.random.Generator
    ) -> List[_ThreadProgram]:
        programs: List[_ThreadProgram] = []
        for thread, roles in enumerate(self.assignments()):
            ops: List[Op] = []
            for role, instance in enumerate(roles):
                ops.extend(self._role_ops(role, instance, rng))
            programs.append(_ThreadProgram(thread=thread, ops=ops))
        base = len(programs)
        for stress_index in range(self.stress_threads):
            programs.append(
                self._stress_program(base + stress_index, rng)
            )
        return programs

    # -- execution -----------------------------------------------------------

    def run(self, rng: np.random.Generator) -> List[Outcome]:
        """Execute the iteration; one outcome per test instance."""
        programs = self.build_programs(rng)
        memory = CoherentMemory()
        buffers = [StoreBuffer(p.thread) for p in programs]
        registers: Dict[str, int] = {}
        cursors = [0] * len(programs)
        remaining = [len(p.ops) for p in programs]
        chunk_mean = self.tuning.chunk_mean

        while any(remaining):
            runnable = [
                index for index, left in enumerate(remaining) if left
            ]
            thread = int(rng.choice(runnable))
            if chunk_mean <= 1.0:
                chunk = 1
            else:
                chunk = int(rng.geometric(1.0 / chunk_mean))
            for _ in range(min(chunk, remaining[thread])):
                op = programs[thread].ops[cursors[thread]]
                self._execute(op, buffers[thread], memory, registers, rng)
                cursors[thread] += 1
                remaining[thread] -= 1
            for buffer in buffers:
                if not buffer.empty:
                    buffer.flush_random(
                        memory, rng, self.tuning.flush_probability
                    )
        order = list(range(len(buffers)))
        rng.shuffle(order)
        for index in order:
            buffers[index].flush_all(memory)
        return self._collect(memory, registers)

    def _execute(
        self,
        op: Op,
        buffer: StoreBuffer,
        memory: CoherentMemory,
        registers: Dict[str, int],
        rng: np.random.Generator,
    ) -> None:
        if op.kind is OpKind.STORE:
            assert op.location is not None and op.value is not None
            buffer.push(op.location, op.value)
        elif op.kind is OpKind.FENCE:
            buffer.push_barrier()
        elif op.kind is OpKind.LOAD:
            assert op.location is not None and op.register is not None
            forwarded = buffer.newest_pending(op.location)
            if forwarded is not None:
                registers[op.register] = forwarded
                return
            stale = self.bugs.stale_read_probability(self.tuning)
            if stale > 0.0 and rng.random() < stale:
                registers[op.register] = memory.read_stale(
                    op.location, rng, self.bugs.stale_depth()
                )
                return
            registers[op.register] = memory.read_current(op.location)
        elif op.kind is OpKind.RMW:
            assert op.location is not None
            assert op.value is not None and op.register is not None
            buffer.flush_for_rmw(op.location, memory)
            old = memory.read_current(op.location)
            memory.commit(op.location, op.value, buffer.thread)
            registers[op.register] = old
        else:  # pragma: no cover - exhaustive enum
            raise EnvironmentError_(f"unknown op kind {op.kind}")

    def _collect(
        self, memory: CoherentMemory, registers: Dict[str, int]
    ) -> List[Outcome]:
        outcomes: List[Outcome] = []
        for instance in range(self.instance_count):
            locations = self._locations_for(instance)
            reads = {
                register: registers.get(
                    _instance_register(register, instance), 0
                )
                for register in self.test.registers
            }
            finals = {
                original: memory.read_current(arena)
                for original, arena in locations.items()
            }
            outcomes.append(Outcome(reads=reads, finals=finals))
        return outcomes


def run_parallel_iteration(
    device: Device,
    test: LitmusTest,
    environment: TestingEnvironment,
    rng: np.random.Generator,
    instance_count: Optional[int] = None,
    stress_threads: Optional[int] = None,
) -> List[Outcome]:
    """Convenience wrapper: one operational PTE iteration on a device.

    ``instance_count`` defaults to a Python-feasible 256 (a real PTE
    iteration would use the environment's full
    ``instances_per_iteration``); the environment's stress percentage
    decides the stress-thread count when not given.
    """
    count = instance_count if instance_count is not None else 256
    params = environment.parameters
    if stress_threads is None:
        stress_fraction = params.mem_stress_pct / 100.0
        stress_threads = int(
            stress_fraction
            * max(0, params.max_workgroups - params.testing_workgroups)
        )
    workload = environment.workload(device.profile, test)
    tuning = device.tuning(workload)
    iteration = ParallelIteration(
        test=test,
        instance_count=count,
        tuning=tuning,
        instance_factor=params.permute_first,
        location_factor=params.permute_second,
        stress_threads=min(stress_threads, count),
        bugs=device.bugs,
    )
    return iteration.run(rng)
