"""Environment-search strategies beyond random sampling.

The paper tunes by evaluating *random* environments ("It is infeasible
to examine the full space of combinations of these parameters, so a
number of random configurations are run", Sec. 4.1) and leaves smarter
search open.  This module implements that future-work direction:

* :class:`RandomSearch` — the paper's strategy, as the baseline;
* :class:`EvolutionarySearch` — a simple (μ+λ) evolution strategy that
  keeps the best environments found so far and perturbs their
  parameters.

Both consume the same evaluation budget (number of environments run),
so they are directly comparable; ``benchmarks/bench_ablation_search.py``
does exactly that.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.env.environment import (
    EnvironmentKind,
    TestingEnvironment,
    random_environment,
)
from repro.env.parameters import EnvironmentParameters, STRESS_PATTERNS
from repro.env.runner import Runner, unit_rng
from repro.errors import EnvironmentError_
from repro.gpu.device import Device
from repro.litmus.program import LitmusTest

Objective = Callable[[TestingEnvironment], float]


def _objective_runner(
    runner: Optional[Runner], backend: Optional[str]
) -> Runner:
    if runner is not None and backend is not None:
        raise EnvironmentError_(
            "pass either runner= or backend=, not both; a runner "
            "already carries its backend"
        )
    return runner if runner is not None else Runner(backend=backend)


def mean_rate_objective(
    devices: Sequence[Device],
    tests: Sequence[LitmusTest],
    runner: Optional[Runner] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Objective:
    """Objective: mean death rate over (test × device) pairs.

    This is what "an effective testing environment" means in Sec. 5 —
    it kills mutants quickly across the board.  ``backend`` selects an
    execution backend by registry name (mutually exclusive with
    ``runner``); search loops evaluate the same (device, test) pairs in
    every environment, so the ``vectorized`` backend's structural memo
    caches pay off heavily here.
    """
    active_runner = _objective_runner(runner, backend)

    def evaluate(environment: TestingEnvironment) -> float:
        rates = []
        for device in devices:
            for test in tests:
                rng = unit_rng(
                    seed, environment.env_key, device.name, test.name
                )
                rates.append(
                    active_runner.run(device, test, environment, rng).rate
                )
        return sum(rates) / len(rates)

    return evaluate


def min_rate_objective(
    devices: Sequence[Device],
    tests: Sequence[LitmusTest],
    runner: Optional[Runner] = None,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Objective:
    """Objective: the worst (test × device) death rate.

    Maximising the minimum rate matches Algorithm 1's tie-break and
    favours environments that work *everywhere* — the property a CTS
    environment needs.  ``backend`` is as in
    :func:`mean_rate_objective`.
    """
    active_runner = _objective_runner(runner, backend)

    def evaluate(environment: TestingEnvironment) -> float:
        worst = float("inf")
        for device in devices:
            for test in tests:
                rng = unit_rng(
                    seed, environment.env_key, device.name, test.name
                )
                run = active_runner.run(device, test, environment, rng)
                worst = min(worst, run.rate)
        return worst if worst != float("inf") else 0.0

    return evaluate


@dataclass(frozen=True)
class SearchRecord:
    environment: TestingEnvironment
    score: float


@dataclass(frozen=True)
class SearchResult:
    """The outcome of a tuning search."""

    best: SearchRecord
    history: Tuple[SearchRecord, ...]

    @property
    def evaluations(self) -> int:
        return len(self.history)

    def best_so_far(self) -> List[float]:
        """Running maximum of the objective — the tuning curve."""
        curve: List[float] = []
        current = float("-inf")
        for record in self.history:
            current = max(current, record.score)
            curve.append(current)
        return curve


class SearchStrategy(abc.ABC):
    """Searches the environment space under an evaluation budget."""

    def __init__(self, kind: EnvironmentKind, seed: int = 0) -> None:
        if not kind.stressed:
            raise EnvironmentError_(
                "search requires a tunable (stressed) environment kind"
            )
        self.kind = kind
        self.seed = seed

    @abc.abstractmethod
    def run(self, objective: Objective, budget: int) -> SearchResult:
        """Evaluate up to ``budget`` environments; return the best."""

    def _evaluate_all(
        self,
        environments: Sequence[TestingEnvironment],
        objective: Objective,
    ) -> List[SearchRecord]:
        return [
            SearchRecord(environment=env, score=objective(env))
            for env in environments
        ]


class RandomSearch(SearchStrategy):
    """The paper's strategy: independent random draws."""

    def run(self, objective: Objective, budget: int) -> SearchResult:
        if budget < 1:
            raise EnvironmentError_("budget must be >= 1")
        rng = np.random.default_rng(self.seed)
        environments = [
            random_environment(self.kind, rng, env_key=index)
            for index in range(budget)
        ]
        history = self._evaluate_all(environments, objective)
        best = max(history, key=lambda record: record.score)
        return SearchResult(best=best, history=tuple(history))


class EvolutionarySearch(SearchStrategy):
    """A (μ+λ) evolution strategy over the 17 parameters.

    Seeds a random population, then repeatedly perturbs the best
    survivors.  Perturbation respects each parameter's type: integer
    scales jiggle multiplicatively, percentages move in steps of 25,
    patterns resample, powers of two shift by one exponent.
    """

    def __init__(
        self,
        kind: EnvironmentKind,
        seed: int = 0,
        population: int = 8,
        survivors: int = 3,
    ) -> None:
        super().__init__(kind, seed)
        if survivors < 1 or population < survivors:
            raise EnvironmentError_(
                "need population >= survivors >= 1"
            )
        self.population = population
        self.survivors = survivors

    # -- parameter perturbation ------------------------------------------

    def _perturb(
        self,
        parameters: EnvironmentParameters,
        rng: np.random.Generator,
    ) -> EnvironmentParameters:
        updates = {}

        def maybe(probability: float) -> bool:
            return rng.random() < probability

        if self.kind.parallel and maybe(0.4):
            workgroups = int(
                np.clip(
                    round(
                        parameters.testing_workgroups
                        * rng.uniform(0.5, 2.0)
                    ),
                    16,
                    1024,
                )
            )
            updates["testing_workgroups"] = workgroups
            updates["max_workgroups"] = max(
                parameters.max_workgroups, workgroups
            )
        if maybe(0.4):
            extra = int(rng.integers(0, 513))
            base = updates.get(
                "testing_workgroups", parameters.testing_workgroups
            )
            updates["max_workgroups"] = base + extra
        for field in ("shuffle_pct", "barrier_pct", "mem_stress_pct",
                      "pre_stress_pct"):
            if maybe(0.3):
                step = int(rng.choice([-50, -25, 25, 50]))
                updates[field] = int(
                    np.clip(getattr(parameters, field) + step, 0, 100)
                )
        for field, cap in (
            ("mem_stress_iterations", 1024),
            ("pre_stress_iterations", 128),
            ("stress_target_lines", 16),
            ("mem_stride", 7),
        ):
            if maybe(0.3):
                scaled = round(
                    max(1, getattr(parameters, field))
                    * rng.uniform(0.5, 2.0)
                )
                updates[field] = int(np.clip(scaled, 0, cap))
        for field in ("mem_stress_pattern", "pre_stress_pattern"):
            if maybe(0.25):
                updates[field] = int(
                    rng.integers(0, len(STRESS_PATTERNS))
                )
        for field, low, high in (
            ("stress_line_size", 2, 8),
            ("scratch_memory_size", 9, 12),
        ):
            if maybe(0.25):
                exponent = int(getattr(parameters, field)).bit_length() - 1
                exponent = int(
                    np.clip(exponent + rng.choice([-1, 1]), low, high)
                )
                updates[field] = 2 ** exponent
        for field in ("permute_first", "permute_second"):
            if maybe(0.25):
                updates[field] = int(rng.integers(1, 4096))
        return dataclasses.replace(parameters, **updates)

    # -- the search loop -----------------------------------------------------

    def run(self, objective: Objective, budget: int) -> SearchResult:
        if budget < 1:
            raise EnvironmentError_("budget must be >= 1")
        rng = np.random.default_rng(self.seed)
        next_key = 0

        def fresh(parameters=None) -> TestingEnvironment:
            nonlocal next_key
            if parameters is None:
                environment = random_environment(
                    self.kind, rng, env_key=next_key
                )
            else:
                environment = TestingEnvironment(
                    kind=self.kind,
                    parameters=parameters,
                    env_key=next_key,
                )
            next_key += 1
            return environment

        seed_count = min(budget, self.population)
        history = self._evaluate_all(
            [fresh() for _ in range(seed_count)], objective
        )
        while len(history) < budget:
            elite = sorted(
                history, key=lambda record: record.score, reverse=True
            )[: self.survivors]
            parent = elite[
                int(rng.integers(0, len(elite)))
            ].environment.parameters
            child = fresh(self._perturb(parent, rng))
            history.extend(self._evaluate_all([child], objective))
        best = max(history, key=lambda record: record.score)
        return SearchResult(best=best, history=tuple(history))
