"""The 17 tunable stress parameters of testing environments.

Prior work (Kirkham et al., "Foundations of Empirical Memory
Consistency Testing") defined 17 parameters controlling the context a
litmus test runs in; the paper tunes testing environments by randomly
instantiating them (Sec. 4.1, "Additional parameters").  This module
reproduces that parameter space, its random sampling, and the four
preset environments of Sec. 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import EnvironmentError_

#: Stress access patterns, as in the paper's artifact.
STRESS_PATTERNS = (
    "store-store",
    "store-load",
    "load-store",
    "load-load",
)


@dataclass(frozen=True)
class EnvironmentParameters:
    """One point in the 17-dimensional testing-environment space."""

    testing_workgroups: int = 2
    max_workgroups: int = 32
    workgroup_size: int = 256
    shuffle_pct: int = 0
    barrier_pct: int = 0
    mem_stress_pct: int = 0
    mem_stress_iterations: int = 0
    mem_stress_pattern: int = 0
    pre_stress_pct: int = 0
    pre_stress_iterations: int = 0
    pre_stress_pattern: int = 0
    stress_line_size: int = 16  # 2**stress_line_exponent elements
    stress_target_lines: int = 2
    scratch_memory_size: int = 2048
    mem_stride: int = 1
    permute_first: int = 419
    permute_second: int = 1031

    def __post_init__(self) -> None:
        if not 1 <= self.testing_workgroups <= self.max_workgroups:
            raise EnvironmentError_(
                "need 1 <= testing_workgroups <= max_workgroups"
            )
        if self.workgroup_size < 1:
            raise EnvironmentError_("workgroup_size must be >= 1")
        for name in ("shuffle_pct", "barrier_pct", "mem_stress_pct",
                     "pre_stress_pct"):
            value = getattr(self, name)
            if not 0 <= value <= 100:
                raise EnvironmentError_(f"{name} must be in [0, 100]")
        for name in ("mem_stress_iterations", "pre_stress_iterations",
                     "stress_target_lines", "mem_stride"):
            if getattr(self, name) < 0:
                raise EnvironmentError_(f"{name} must be >= 0")
        for name in ("mem_stress_pattern", "pre_stress_pattern"):
            value = getattr(self, name)
            if not 0 <= value < len(STRESS_PATTERNS):
                raise EnvironmentError_(
                    f"{name} must index one of {STRESS_PATTERNS}"
                )
        for name in ("stress_line_size", "scratch_memory_size"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise EnvironmentError_(f"{name} must be a power of two")
        if self.permute_first < 1 or self.permute_second < 1:
            raise EnvironmentError_("permutation factors must be >= 1")

    # -- derived views -------------------------------------------------------

    @property
    def parameter_count(self) -> int:
        return len(fields(self))

    @property
    def testing_threads(self) -> int:
        return self.testing_workgroups * self.workgroup_size

    @property
    def stress_workgroup_fraction(self) -> float:
        return (
            self.max_workgroups - self.testing_workgroups
        ) / self.max_workgroups

    @property
    def stress_line_exponent(self) -> int:
        return int(self.stress_line_size).bit_length() - 1

    def describe(self) -> str:
        pairs = [
            f"{field.name}={getattr(self, field.name)}"
            for field in fields(self)
        ]
        return ", ".join(pairs)


def random_parameters(
    rng: np.random.Generator,
    parallel: bool,
) -> EnvironmentParameters:
    """Draw a random environment configuration (one tuning candidate).

    Args:
        rng: Source of randomness (seeded by the tuning harness).
        parallel: PTE-style (hundreds of testing workgroups) vs
            SITE-style (exactly one instance per iteration).
    """
    if parallel:
        testing_workgroups = int(rng.integers(16, 1025))
        max_workgroups = testing_workgroups + int(rng.integers(0, 513))
        workgroup_size = int(rng.choice([64, 128, 256]))
    else:
        testing_workgroups = 2
        max_workgroups = int(rng.integers(4, 129))
        workgroup_size = 1
    return EnvironmentParameters(
        testing_workgroups=testing_workgroups,
        max_workgroups=max_workgroups,
        workgroup_size=workgroup_size,
        shuffle_pct=int(rng.choice([0, 50, 100])),
        barrier_pct=int(rng.choice([0, 100])),
        mem_stress_pct=int(rng.choice([0, 25, 50, 75, 100])),
        mem_stress_iterations=int(rng.integers(0, 1025)),
        mem_stress_pattern=int(rng.integers(0, 4)),
        pre_stress_pct=int(rng.choice([0, 25, 50, 75, 100])),
        pre_stress_iterations=int(rng.integers(0, 129)),
        pre_stress_pattern=int(rng.integers(0, 4)),
        stress_line_size=int(2 ** rng.integers(2, 9)),
        stress_target_lines=int(rng.integers(1, 17)),
        scratch_memory_size=int(2 ** rng.integers(9, 13)),
        mem_stride=int(rng.integers(1, 8)),
        permute_first=int(rng.integers(1, 4096)),
        permute_second=int(rng.integers(1, 4096)),
    )


# -- the four presets of Sec. 5.1 -------------------------------------------


def site_baseline_parameters() -> EnvironmentParameters:
    """SITE Baseline: one instance, 32 workgroups, no stress."""
    return EnvironmentParameters(
        testing_workgroups=2,
        max_workgroups=32,
        workgroup_size=1,
    )


def pte_baseline_parameters() -> EnvironmentParameters:
    """PTE Baseline: 1024 testing workgroups × 256 threads, no stress."""
    return EnvironmentParameters(
        testing_workgroups=1024,
        max_workgroups=1024,
        workgroup_size=256,
    )
