"""The parallel permutation strategy of Sec. 4.1.

PTE assigns test instances and memory locations to threads with the
modular permutation ``v ↦ (v · P) mod N`` where ``P`` is co-prime to
``N``.  The function is a bijection, costs a handful of ALU ops per
thread, has no divergent control flow, and avoids the degenerate
``n ↦ n + 1`` neighbour pairing that prior work showed to be
ineffective.

This module also implements the striping rule: test instances are
spread across workgroups so that communication patterns vary spatially
("if thread 0 in workgroup A communicates with some thread in workgroup
B, thread 1 in workgroup B communicates with some thread in C").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import EnvironmentError_


def is_coprime(first: int, second: int) -> bool:
    """True iff gcd(first, second) == 1."""
    return math.gcd(first, second) == 1


def coprime_to(n: int, candidate: int) -> int:
    """The smallest integer >= ``candidate`` that is co-prime to ``n``.

    Used to repair a randomly drawn permutation factor: the tuning
    harness draws factors freely and snaps them to validity.
    """
    if n <= 0:
        raise EnvironmentError_("modulus must be positive")
    value = max(1, candidate)
    while not is_coprime(n, value):
        value += 1
    return value


@dataclass(frozen=True)
class ParallelPermutation:
    """The bijection ``v ↦ (v * factor) mod size``."""

    size: int
    factor: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise EnvironmentError_("permutation size must be positive")
        if not 0 < self.factor:
            raise EnvironmentError_("permutation factor must be positive")
        if not is_coprime(self.size, self.factor):
            raise EnvironmentError_(
                f"factor {self.factor} is not co-prime to size {self.size}"
            )

    def __call__(self, value: int) -> int:
        return (value * self.factor) % self.size

    def apply_all(self) -> List[int]:
        return [self(value) for value in range(self.size)]

    @property
    def is_degenerate(self) -> bool:
        """Identity or near-neighbour mappings stress nothing."""
        return self.factor % self.size in (1, self.size - 1)


def naive_neighbor_assignment(size: int) -> List[int]:
    """The ineffective ``n ↦ (n + 1) mod size`` pairing from prior
    work, kept for the ablation benchmark."""
    if size <= 0:
        raise EnvironmentError_("size must be positive")
    return [(value + 1) % size for value in range(size)]


@dataclass(frozen=True)
class InstanceAssignment:
    """Which instance-roles one thread executes.

    For a two-thread litmus test, thread ``A`` runs thread 0's
    instructions of ``roles[0]`` and thread 1's instructions of
    ``roles[1]`` (Fig. 4 of the paper).
    """

    thread: int
    roles: Tuple[int, ...]


def assign_instances(
    thread_count: int, factor: int, roles: int = 2
) -> List[InstanceAssignment]:
    """PTE thread-to-instance assignment.

    Thread ``t`` executes role ``j`` of instance ``perm^j(t)``, where
    ``perm`` is the co-prime permutation.  Because ``perm`` is a
    bijection, every role of every instance is covered exactly once,
    and (for non-degenerate factors) the two halves of one instance
    land on unrelated threads.

    Args:
        thread_count: N — also the number of test instances.
        factor: P, snapped to the nearest co-prime if necessary.
        roles: How many testing threads the litmus test has.
    """
    if roles < 1:
        raise EnvironmentError_("roles must be >= 1")
    permutation = ParallelPermutation(
        thread_count, coprime_to(thread_count, factor)
    )
    assignments = []
    for thread in range(thread_count):
        instance_roles = []
        value = thread
        for _ in range(roles):
            instance_roles.append(value)
            value = permutation(value)
        assignments.append(
            InstanceAssignment(thread=thread, roles=tuple(instance_roles))
        )
    return assignments


def verify_assignment_covers(
    assignments: Sequence[InstanceAssignment], roles: int
) -> bool:
    """Every instance gets every role executed exactly once."""
    thread_count = len(assignments)
    for role in range(roles):
        seen = sorted(assignment.roles[role] for assignment in assignments)
        if seen != list(range(thread_count)):
            return False
    return True


def stripe_workgroup(
    workgroup: int, position: int, testing_workgroups: int
) -> int:
    """The workgroup a thread's communication partner lives in.

    Implements the paper's striping: partners shift by the thread's
    position within the instance, so workgroup pairs vary across
    instances.  With three or more testing workgroups all roles of an
    instance land in distinct workgroups.
    """
    if testing_workgroups <= 0:
        raise EnvironmentError_("testing_workgroups must be positive")
    if testing_workgroups == 1:
        return 0
    shift = 1 + position % (testing_workgroups - 1)
    return (workgroup + shift) % testing_workgroups
