"""Testing environments: stress parameters, SITE/PTE, running, tuning.

Implements Sec. 4.1 of the paper (the Parallel Testing Environment and
its co-prime permutation assignment) together with the 17-parameter
stress space of prior work, the four preset environment families of
Sec. 5.1, and the tuning harness that searches them.
"""

from repro.env.environment import (
    DEFAULT_ITERATIONS,
    EnvironmentKind,
    TestingEnvironment,
    pte_baseline,
    random_environment,
    random_environments,
    site_baseline,
)
from repro.env.parameters import (
    EnvironmentParameters,
    STRESS_PATTERNS,
    pte_baseline_parameters,
    random_parameters,
    site_baseline_parameters,
)
from repro.env.permutation import (
    InstanceAssignment,
    ParallelPermutation,
    assign_instances,
    coprime_to,
    is_coprime,
    naive_neighbor_assignment,
    stripe_workgroup,
    verify_assignment_covers,
)
from repro.env.parallel_kernel import (
    ParallelIteration,
    run_parallel_iteration,
)
from repro.env.runner import (
    RESULT_KEY_SCHEMA,
    OracleCacheStats,
    Runner,
    TestRun,
    oracle_cache_stats,
    oracle_for,
    reset_oracle_cache,
    result_digest,
    result_key,
    stable_name_hash,
    structural_test_key,
    unit_rng,
    unit_seed_sequence,
)
from repro.env.search import (
    EvolutionarySearch,
    RandomSearch,
    SearchResult,
    mean_rate_objective,
    min_rate_objective,
)
from repro.env.tuning import (
    TuningResult,
    environments_for,
    tuning_run,
)

__all__ = [
    "DEFAULT_ITERATIONS",
    "EnvironmentKind",
    "EnvironmentParameters",
    "EvolutionarySearch",
    "InstanceAssignment",
    "OracleCacheStats",
    "ParallelIteration",
    "RESULT_KEY_SCHEMA",
    "ParallelPermutation",
    "RandomSearch",
    "Runner",
    "STRESS_PATTERNS",
    "SearchResult",
    "TestRun",
    "TestingEnvironment",
    "TuningResult",
    "assign_instances",
    "coprime_to",
    "environments_for",
    "is_coprime",
    "mean_rate_objective",
    "min_rate_objective",
    "naive_neighbor_assignment",
    "oracle_cache_stats",
    "oracle_for",
    "pte_baseline",
    "pte_baseline_parameters",
    "random_environment",
    "random_environments",
    "random_parameters",
    "reset_oracle_cache",
    "result_digest",
    "result_key",
    "run_parallel_iteration",
    "site_baseline",
    "site_baseline_parameters",
    "stable_name_hash",
    "stripe_workgroup",
    "structural_test_key",
    "tuning_run",
    "unit_rng",
    "unit_seed_sequence",
    "verify_assignment_covers",
]
