"""Executing tests in environments and recording results.

A :class:`TestRun` is the atomic measurement of the whole evaluation:
one (test, device, environment) triple, executed for some iterations,
yielding a kill count and a simulated duration.  Everything in Sec. 5
— mutation scores, death rates, environment merging, correlation — is
an aggregation over ``TestRun`` records.

Two execution modes share this interface:

* ``analytic`` (default) — per-instance probabilities from the batch
  model, kills sampled binomially; scales to PTE instance counts.
* ``operational`` — every instance actually simulated by the
  operational executor; bounded by ``max_operational_instances`` per
  iteration and intended for demos and validation at SITE scale.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.env.environment import TestingEnvironment
from repro.errors import EnvironmentError_
from repro.gpu.device import Device
from repro.litmus.oracle import TestOracle
from repro.litmus.program import LitmusTest


def structural_test_key(test: LitmusTest) -> str:
    """A stable structural hash of a test.

    Two structurally identical tests (same instructions, values,
    threads) share a key across processes and interpreter runs —
    unlike ``hash()``, which is randomised per process.
    """
    return hashlib.sha256(test.pretty().encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class OracleCacheStats:
    """Counters for the process-wide oracle cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OracleCache:
    """Bounded LRU cache of :class:`TestOracle` keyed structurally.

    Oracle construction enumerates candidate executions, so it is by
    far the most expensive per-test step; memoizing it is what makes
    operational campaigns affordable.  The cache is bounded so a
    campaign over an unbounded stream of generated tests cannot grow
    process memory without limit, and counts hits/misses/evictions so
    the campaign telemetry layer can report memoization wins.
    """

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise EnvironmentError_("oracle cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, TestOracle]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, test: LitmusTest) -> TestOracle:
        key = structural_test_key(test)
        oracle = self._entries.get(key)
        if oracle is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return oracle
        self.misses += 1
        oracle = TestOracle(test)
        self._entries[key] = oracle
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return oracle

    def stats(self) -> OracleCacheStats:
        return OracleCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_ORACLE_CACHE = OracleCache()


def oracle_for(test: LitmusTest) -> TestOracle:
    """Process-wide oracle cache (oracle construction enumerates)."""
    return _ORACLE_CACHE.get(test)


def oracle_cache_stats() -> OracleCacheStats:
    """Current hit/miss/eviction counters of the oracle cache."""
    return _ORACLE_CACHE.stats()


def reset_oracle_cache(maxsize: Optional[int] = None) -> None:
    """Empty the oracle cache (and optionally rebound it)."""
    global _ORACLE_CACHE
    if maxsize is not None:
        _ORACLE_CACHE = OracleCache(maxsize=maxsize)
    else:
        _ORACLE_CACHE.clear()


# -- deterministic per-unit seeding -------------------------------------------


def stable_name_hash(name: str) -> int:
    """A process-stable 32-bit hash of a name (CRC32, not ``hash``)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def unit_seed_sequence(
    seed: int, env_key: int, device_name: str, test_name: str
) -> np.random.SeedSequence:
    """The RNG root for one (environment, device, test) work unit.

    Spawn-style derivation from the campaign seed and the unit's
    stable key: every unit gets an independent stream that does not
    depend on execution order, worker count, or Python's per-process
    hash randomisation, so any subset of a matrix — or a sharded
    parallel run of it — reproduces the full run's values exactly.
    """
    return np.random.SeedSequence(
        (
            seed,
            env_key,
            stable_name_hash(device_name),
            stable_name_hash(test_name),
        )
    )


def unit_rng(
    seed: int, env_key: int, device_name: str, test_name: str
) -> np.random.Generator:
    """The deterministic generator for one work unit."""
    return np.random.default_rng(
        unit_seed_sequence(seed, env_key, device_name, test_name)
    )


@dataclass(frozen=True)
class TestRun:
    """The outcome of running one test in one environment on one device."""

    # Not a pytest test class, despite the name.
    __test__ = False

    test_name: str
    device_name: str
    environment: TestingEnvironment
    iterations: int
    instances_per_iteration: int
    kills: int
    seconds: float

    @property
    def killed(self) -> bool:
        return self.kills > 0

    @property
    def rate(self) -> float:
        """Mutant death rate (or bug observation rate): kills/second."""
        if self.seconds <= 0.0:
            return 0.0
        return self.kills / self.seconds

    @property
    def instances(self) -> int:
        return self.iterations * self.instances_per_iteration

    def describe(self) -> str:
        return (
            f"{self.test_name} on {self.device_name} in "
            f"{self.environment.name}: {self.kills} kills / "
            f"{self.instances} instances / {self.seconds:.4f}s "
            f"({self.rate:.1f}/s)"
        )


class Runner:
    """Runs tests in environments, in analytic or operational mode."""

    def __init__(
        self,
        mode: str = "analytic",
        max_operational_instances: int = 64,
        iterations_override: Optional[int] = None,
    ) -> None:
        if mode not in ("analytic", "operational"):
            raise EnvironmentError_(
                f"mode must be 'analytic' or 'operational', got {mode!r}"
            )
        if max_operational_instances < 1:
            raise EnvironmentError_(
                "max_operational_instances must be >= 1"
            )
        self.mode = mode
        self.max_operational_instances = max_operational_instances
        self.iterations_override = iterations_override

    # -- single runs -----------------------------------------------------

    def run(
        self,
        device: Device,
        test: LitmusTest,
        environment: TestingEnvironment,
        rng: np.random.Generator,
    ) -> TestRun:
        iterations = (
            self.iterations_override
            if self.iterations_override is not None
            else environment.iterations()
        )
        if self.mode == "analytic":
            return self._run_analytic(device, test, environment, iterations, rng)
        return self._run_operational(device, test, environment, iterations, rng)

    def _run_analytic(
        self,
        device: Device,
        test: LitmusTest,
        environment: TestingEnvironment,
        iterations: int,
        rng: np.random.Generator,
    ) -> TestRun:
        workload = environment.workload(device.profile, test)
        kills = device.sample_iteration_kills(
            test, workload, iterations, rng, env_key=environment.env_key
        )
        seconds = iterations * environment.iteration_seconds(device, test)
        return TestRun(
            test_name=test.name,
            device_name=device.name,
            environment=environment,
            iterations=iterations,
            instances_per_iteration=workload.instances_in_flight,
            kills=int(kills.sum()),
            seconds=seconds,
        )

    def _run_operational(
        self,
        device: Device,
        test: LitmusTest,
        environment: TestingEnvironment,
        iterations: int,
        rng: np.random.Generator,
    ) -> TestRun:
        oracle = oracle_for(test)
        count_target = oracle.target_allowed()
        workload = environment.workload(device.profile, test)
        instances = min(
            workload.instances_in_flight, self.max_operational_instances
        )
        kills = 0
        for _ in range(iterations):
            for _ in range(instances):
                outcome = device.run_instance(test, workload, rng)
                if count_target:
                    kills += oracle.matches_target(outcome)
                else:
                    kills += oracle.is_violation(outcome)
        seconds = iterations * device.iteration_seconds(
            instances, environment.stress_level()
        )
        return TestRun(
            test_name=test.name,
            device_name=device.name,
            environment=environment,
            iterations=iterations,
            instances_per_iteration=instances,
            kills=kills,
            seconds=seconds,
        )

    # -- matrices -----------------------------------------------------------

    def run_matrix(
        self,
        devices: Sequence[Device],
        tests: Sequence[LitmusTest],
        environments: Sequence[TestingEnvironment],
        seed: int = 0,
    ) -> List[TestRun]:
        """Run every (device, test, environment) combination.

        Each triple gets an independent, deterministic RNG stream, so
        subsets of the matrix reproduce the full run's values.
        """
        runs: List[TestRun] = []
        for environment in environments:
            for device in devices:
                for test in tests:
                    stream = unit_rng(
                        seed, environment.env_key, device.name, test.name
                    )
                    runs.append(self.run(device, test, environment, stream))
        return runs
