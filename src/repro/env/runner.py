"""Executing tests in environments and recording results.

A :class:`TestRun` is the atomic measurement of the whole evaluation:
one (test, device, environment) triple, executed for some iterations,
yielding a kill count and a simulated duration.  Everything in Sec. 5
— mutation scores, death rates, environment merging, correlation — is
an aggregation over ``TestRun`` records.

Execution strategies live in :mod:`repro.backends` (``analytic``,
``operational``, ``vectorized``, ``tensor``); the :class:`Runner`
here is a thin composition over one of them, owning only what is
strategy-independent — iteration-count resolution and the
deterministic per-unit RNG derivation.  ``backend=`` (a registry name
or a :class:`~repro.backends.Backend` instance) together with
:func:`repro.backends.make_backend` is the single construction path;
the ``mode=`` alias deprecated since the backend extraction has been
removed.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.env.environment import TestingEnvironment
from repro.errors import EnvironmentError_
from repro.gpu.device import Device
from repro.litmus.oracle import TestOracle
from repro.litmus.program import LitmusTest


def structural_test_key(test: LitmusTest) -> str:
    """A stable structural hash of a test.

    Two structurally identical tests (same instructions, values,
    threads) share a key across processes and interpreter runs —
    unlike ``hash()``, which is randomised per process.
    """
    return hashlib.sha256(test.pretty().encode("utf-8")).hexdigest()


#: Version of the canonical result-key tuple layout below.  Bump it
#: whenever :func:`result_key` changes shape or a component's identity
#: semantics change; the bump flows into every :func:`result_digest`,
#: so persistent stores treat old entries as misses instead of serving
#: results keyed under different semantics.
RESULT_KEY_SCHEMA = 1


def result_key(
    test: LitmusTest,
    device: Device,
    environment: TestingEnvironment,
    seed: Optional[int] = None,
    iterations: Optional[int] = None,
    structural_key: Optional[str] = None,
) -> tuple:
    """The canonical identity of one (test, device, environment) unit.

    Every memo and store in the system keys results off this one
    tuple so cache keys can never diverge between layers: the
    vectorized backend's probability memo uses it with ``seed`` and
    ``iterations`` unset (probabilities are draw-independent), its
    whole-run memo and the persistent :mod:`repro.store` set both.

    Components are frozen dataclasses, enums, strings, and ints, so
    the tuple is hashable and its ``repr`` is identical across
    processes — which is what lets :func:`result_digest` derive a
    process-stable content address from it.

    ``structural_key`` may be passed when the caller already computed
    :func:`structural_test_key` (grid passes compute it once per
    test); it must equal ``structural_test_key(test)``.
    """
    key = (
        structural_key
        if structural_key is not None
        else structural_test_key(test)
    )
    return (
        key,
        test.name,
        device.profile,
        tuple(device.bugs),
        environment,
        seed,
        iterations,
    )


def result_digest(
    backend_name: str, backend_version: int, key: tuple
) -> str:
    """A content address for one unit result under one backend.

    SHA-256 over the deterministic ``repr`` of (key schema, backend
    name, backend version, :func:`result_key` tuple).  Two processes —
    or two runs months apart — computing the digest for the same unit
    under the same backend semantics get the same address; any change
    to the backend's numeric behaviour is signalled by bumping its
    ``version`` and lands old store entries as misses.
    """
    payload = repr(
        (RESULT_KEY_SCHEMA, backend_name, backend_version, key)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class OracleCacheStats:
    """Counters for the process-wide oracle cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OracleCache:
    """Bounded LRU cache of :class:`TestOracle` keyed structurally.

    Oracle construction enumerates candidate executions, so it is by
    far the most expensive per-test step; memoizing it is what makes
    operational campaigns affordable.  The cache is bounded so a
    campaign over an unbounded stream of generated tests cannot grow
    process memory without limit, and counts hits/misses/evictions so
    the campaign telemetry layer can report memoization wins.
    """

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise EnvironmentError_("oracle cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, TestOracle]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, test: LitmusTest) -> TestOracle:
        key = structural_test_key(test)
        oracle = self._entries.get(key)
        if oracle is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return oracle
        self.misses += 1
        oracle = TestOracle(test)
        self._entries[key] = oracle
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return oracle

    def stats(self) -> OracleCacheStats:
        return OracleCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_ORACLE_CACHE = OracleCache()


def oracle_for(test: LitmusTest) -> TestOracle:
    """Process-wide oracle cache (oracle construction enumerates)."""
    return _ORACLE_CACHE.get(test)


def oracle_cache_stats() -> OracleCacheStats:
    """Current hit/miss/eviction counters of the oracle cache."""
    return _ORACLE_CACHE.stats()


def reset_oracle_cache(maxsize: Optional[int] = None) -> None:
    """Empty the oracle cache (and optionally rebound it)."""
    global _ORACLE_CACHE
    if maxsize is not None:
        _ORACLE_CACHE = OracleCache(maxsize=maxsize)
    else:
        _ORACLE_CACHE.clear()


# -- deterministic per-unit seeding -------------------------------------------


def stable_name_hash(name: str) -> int:
    """A process-stable 32-bit hash of a name (CRC32, not ``hash``)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def unit_seed_sequence(
    seed: int, env_key: int, device_name: str, test_name: str
) -> np.random.SeedSequence:
    """The RNG root for one (environment, device, test) work unit.

    Spawn-style derivation from the campaign seed and the unit's
    stable key: every unit gets an independent stream that does not
    depend on execution order, worker count, or Python's per-process
    hash randomisation, so any subset of a matrix — or a sharded
    parallel run of it — reproduces the full run's values exactly.
    """
    return np.random.SeedSequence(
        (
            seed,
            env_key,
            stable_name_hash(device_name),
            stable_name_hash(test_name),
        )
    )


def unit_rng(
    seed: int, env_key: int, device_name: str, test_name: str
) -> np.random.Generator:
    """The deterministic generator for one work unit."""
    return np.random.default_rng(
        unit_seed_sequence(seed, env_key, device_name, test_name)
    )


@dataclass(frozen=True)
class TestRun:
    """The outcome of running one test in one environment on one device."""

    # Not a pytest test class, despite the name.
    __test__ = False

    test_name: str
    device_name: str
    environment: TestingEnvironment
    iterations: int
    instances_per_iteration: int
    kills: int
    seconds: float

    @property
    def killed(self) -> bool:
        return self.kills > 0

    @property
    def rate(self) -> float:
        """Mutant death rate (or bug observation rate): kills/second."""
        if self.seconds <= 0.0:
            return 0.0
        return self.kills / self.seconds

    @property
    def instances(self) -> int:
        return self.iterations * self.instances_per_iteration

    def describe(self) -> str:
        return (
            f"{self.test_name} on {self.device_name} in "
            f"{self.environment.name}: {self.kills} kills / "
            f"{self.instances} instances / {self.seconds:.4f}s "
            f"({self.rate:.1f}/s)"
        )


class Runner:
    """Runs tests in environments through a pluggable backend.

    The runner is a thin composition: the backend (see
    :mod:`repro.backends`) decides *how* a unit executes, the runner
    resolves *how long* (``iterations_override`` vs the environment's
    default budget) and hands grids to the backend's ``run_matrix``
    so batching backends get whole grids to work with.

    Args:
        backend: A backend name (``"analytic"``, ``"operational"``,
            ``"vectorized"``, ``"tensor"``) or a
            :class:`repro.backends.Backend` instance.  Defaults to
            ``"analytic"``.
        max_operational_instances: Per-iteration instance cap; only
            the operational backend accepts it — passing it with any
            other backend raises :class:`EnvironmentError_` instead of
            being silently ignored.
        iterations_override: Fixed iteration count for every unit.
    """

    def __init__(
        self,
        backend: Union[str, "object", None] = None,
        max_operational_instances: Optional[int] = None,
        iterations_override: Optional[int] = None,
        **removed: "object",
    ) -> None:
        from repro.backends import Backend, make_backend

        if "mode" in removed:
            raise EnvironmentError_(
                "Runner(mode=...) was removed; construct with "
                "Runner(backend=<name or Backend instance>) — "
                "repro.backends.make_backend(name, **options) is the "
                "single validated construction path"
            )
        if removed:
            unknown = ", ".join(sorted(removed))
            raise EnvironmentError_(
                f"Runner() got unexpected argument(s): {unknown}"
            )
        if backend is None:
            backend = "analytic"
        if isinstance(backend, Backend):
            if max_operational_instances is not None:
                raise EnvironmentError_(
                    "max_operational_instances cannot be combined with "
                    "an injected backend instance; configure the "
                    "instance directly"
                )
            self.backend = backend
        else:
            self.backend = make_backend(
                backend,
                max_operational_instances=max_operational_instances,
            )
        self.iterations_override = iterations_override

    @property
    def max_operational_instances(self) -> Optional[int]:
        return getattr(self.backend, "max_operational_instances", None)

    # -- single runs -----------------------------------------------------

    def run(
        self,
        device: Device,
        test: LitmusTest,
        environment: TestingEnvironment,
        rng: np.random.Generator,
    ) -> TestRun:
        iterations = (
            self.iterations_override
            if self.iterations_override is not None
            else environment.iterations()
        )
        from repro import obs
        from repro.backends.base import record_grid

        rec = obs.recorder()
        if not rec.enabled:
            return self.backend.run(
                device, test, environment, iterations, rng
            )
        # A single unit is a degenerate 1x1x1 grid: charging it to the
        # same per-backend family keeps grid timing comparable between
        # batched (run_matrix) and per-unit (campaign worker) paths.
        started = time.perf_counter()
        with rec.span(
            "runner.run",
            backend=self.backend.name,
            test=test.name,
            device=device.name,
        ):
            run = self.backend.run(
                device, test, environment, iterations, rng
            )
        record_grid(
            self.backend.name, time.perf_counter() - started, 1
        )
        return run

    # -- matrices -----------------------------------------------------------

    def run_matrix(
        self,
        devices: Sequence[Device],
        tests: Sequence[LitmusTest],
        environments: Sequence[TestingEnvironment],
        seed: int = 0,
    ) -> List[TestRun]:
        """Run every (device, test, environment) combination.

        Each triple gets an independent, deterministic RNG stream, so
        subsets of the matrix reproduce the full run's values.
        Delegated whole to the backend, so batching backends (the
        vectorized one) see the grid at once.
        """
        return self.backend.run_matrix(
            devices,
            tests,
            environments,
            seed=seed,
            iterations_override=self.iterations_override,
        )
