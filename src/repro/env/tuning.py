"""Tuning runs: searching the environment space (Sec. 5.1).

The paper tunes by generating random environments and executing every
mutant in each, on every device: 150 environments, SITE × 300
iterations, PTE × 100 iterations.  :func:`tuning_run` reproduces that
experiment (scaled by arguments) and returns a :class:`TuningResult`
that the analysis layer aggregates into Fig. 5 and Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.env.environment import (
    EnvironmentKind,
    TestingEnvironment,
    pte_baseline,
    random_environments,
    site_baseline,
)
from repro.env.runner import Runner, TestRun
from repro.errors import AnalysisError, EnvironmentError_
from repro.gpu.device import Device
from repro.litmus.program import LitmusTest

RunKey = Tuple[str, str, int]  # (test, device, env_key)


@dataclass
class TuningResult:
    """All runs of one tuning experiment, with fast lookups."""

    kind: EnvironmentKind
    runs: List[TestRun]
    #: Name of the execution backend that produced the runs, when
    #: known (``None`` for results merged across backends or loaded
    #: from archives that predate backend recording).
    backend: Optional[str] = None
    _index: Dict[RunKey, TestRun] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for run in self.runs:
            key = (run.test_name, run.device_name, run.environment.env_key)
            if key in self._index:
                raise AnalysisError(f"duplicate run for {key}")
            self._index[key] = run

    # -- lookups ---------------------------------------------------------

    @property
    def test_names(self) -> List[str]:
        return sorted({run.test_name for run in self.runs})

    @property
    def device_names(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.device_name not in seen:
                seen.append(run.device_name)
        return seen

    @property
    def environments(self) -> List[TestingEnvironment]:
        seen: Dict[int, TestingEnvironment] = {}
        for run in self.runs:
            seen.setdefault(run.environment.env_key, run.environment)
        return [seen[key] for key in sorted(seen)]

    def run_for(
        self, test_name: str, device_name: str, env_key: int
    ) -> TestRun:
        try:
            return self._index[(test_name, device_name, env_key)]
        except KeyError:
            raise AnalysisError(
                f"no run recorded for test={test_name!r} "
                f"device={device_name!r} env={env_key}"
            ) from None

    def rate(self, test_name: str, device_name: str, env_key: int) -> float:
        return self.run_for(test_name, device_name, env_key).rate

    def runs_for_test(
        self, test_name: str, device_name: Optional[str] = None
    ) -> Iterator[TestRun]:
        for run in self.runs:
            if run.test_name != test_name:
                continue
            if device_name is not None and run.device_name != device_name:
                continue
            yield run

    # -- aggregations used throughout Sec. 5 --------------------------------

    def killed(self, test_name: str, device_name: str) -> bool:
        """Was the test killed in at least one environment? (the
        definition behind the mutation score, Sec. 5.2)"""
        return any(
            run.killed
            for run in self.runs_for_test(test_name, device_name)
        )

    def best_rate(self, test_name: str, device_name: str) -> float:
        """The maximum death rate over all environments."""
        return max(
            (
                run.rate
                for run in self.runs_for_test(test_name, device_name)
            ),
            default=0.0,
        )

    def best_environment(
        self, test_name: str, device_name: str
    ) -> Optional[TestingEnvironment]:
        best: Optional[TestRun] = None
        for run in self.runs_for_test(test_name, device_name):
            if best is None or run.rate > best.rate:
                best = run
        if best is None or not best.killed:
            return None
        return best.environment

    def merge(self, other: "TuningResult") -> "TuningResult":
        if other.kind is not self.kind:
            raise AnalysisError("cannot merge results of different kinds")
        backend = self.backend if self.backend == other.backend else None
        return TuningResult(
            kind=self.kind, runs=self.runs + other.runs, backend=backend
        )


def environments_for(
    kind: EnvironmentKind, count: int, seed: int
) -> List[TestingEnvironment]:
    """The environment family a tuning run evaluates.

    Baseline kinds have exactly one (fixed) environment; stressed kinds
    get ``count`` random candidates.
    """
    if kind is EnvironmentKind.SITE_BASELINE:
        return [site_baseline()]
    if kind is EnvironmentKind.PTE_BASELINE:
        return [pte_baseline()]
    return random_environments(kind, count, seed)


def _name_resolvable(tests: Sequence[LitmusTest]) -> bool:
    """Can workers reconstruct these exact tests from their names?

    Campaign workers materialise tests by name; delegating is only
    sound when name lookup yields a structurally identical test.
    """
    from repro.campaign.spec import CampaignError
    from repro.campaign.worker import _resolve_test

    for test in tests:
        try:
            resolved = _resolve_test(test.name)
        except CampaignError:
            return False
        if resolved.pretty() != test.pretty():
            return False
    return True


def tuning_run(
    kind: EnvironmentKind,
    devices: Sequence[Device],
    tests: Sequence[LitmusTest],
    environment_count: int = 150,
    seed: int = 0,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> TuningResult:
    """Reproduce one of the paper's four tuning experiments.

    Args:
        kind: Which environment family (Sec. 5.1's presets).
        devices: Devices to evaluate (normally the Table 3 roster).
        tests: Tests to execute (normally the 32 mutants).
        environment_count: Random candidates for stressed kinds (the
            paper uses 150).
        seed: Seeds both environment generation and execution.
        runner: A fully configured :class:`Runner` for custom setups;
            mutually exclusive with ``backend``.
        workers: With ``workers > 1``, delegate to the sharded
            campaign executor (:mod:`repro.campaign`); results are
            identical to the serial path for the same seed.  Requires
            name-constructible (bug-free or ``buggy``-roster) devices;
            custom ``runner`` objects force the serial path.
        backend: Execution backend name from the
            :mod:`repro.backends` registry (defaults to
            ``"analytic"``); carried through campaign delegation so
            sharded workers execute with the same backend.
    """
    if runner is not None and backend is not None:
        raise EnvironmentError_(
            "pass either runner= or backend=, not both; a runner "
            "already carries its backend"
        )
    from repro import obs

    rec = obs.recorder()
    rec.counter_inc(
        "repro_tuning_runs_total", 1, {"kind": kind.name.lower()}
    )
    if workers is not None and workers > 1 and runner is None:
        if not any(len(device.bugs) for device in devices) and (
            _name_resolvable(tests)
        ):
            # Lazy import: campaign sits above env in the layering.
            from repro.campaign import (
                CampaignSpec,
                CampaignScheduler,
                ExecutorConfig,
            )

            spec = CampaignSpec(
                name=f"tuning-{kind.name.lower()}",
                kinds=(kind.name,),
                device_names=tuple(device.name for device in devices),
                test_names=tuple(test.name for test in tests),
                environment_count=environment_count,
                seed=seed,
                backend=backend if backend is not None else "analytic",
            )
            outcome = CampaignScheduler(
                spec, config=ExecutorConfig(workers=workers)
            ).run()
            return outcome.results[kind]
    environments = environments_for(kind, environment_count, seed)
    active_runner = runner if runner is not None else Runner(backend=backend)
    with rec.span(
        "tuning.run",
        kind=kind.name.lower(),
        environments=len(environments),
        tests=len(tests),
    ):
        runs = active_runner.run_matrix(
            devices, tests, environments, seed=seed
        )
    return TuningResult(
        kind=kind, runs=runs, backend=active_runner.backend.name
    )
