"""Campaign specifications: the declarative form of an evaluation.

A :class:`CampaignSpec` names a grid of (test × device × environment ×
iterations) work units — the paper's evaluation is one such grid: 150
environments × 4 tuning families × 32 mutants × 4 devices.  The spec
is pure data: environments are regenerated from (kind, count, seed),
devices and tests are referenced by name, and every work unit derives
its RNG stream from the campaign seed and its own stable key
(:func:`repro.env.runner.unit_seed_sequence`).  That makes a spec
compact enough to embed in a journal header, and makes results
independent of execution order and worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.env.environment import EnvironmentKind, TestingEnvironment
from repro.env.runner import unit_seed_sequence
from repro.env.tuning import environments_for
from repro.errors import EnvironmentError_, ReproError

#: Version 2 renamed ``mode`` to ``backend`` (validated against the
#: :mod:`repro.backends` registry) and made the operational instance
#: cap an optional backend option instead of an always-present field.
#: Version 3 added ``suite_path``: a campaign over a synthesized suite
#: (:mod:`repro.synthesis`) records the suite file so workers resolve
#: generated test names from it.  Version 4 added the persistent
#: result store knobs ``store_path`` and ``store_policy``
#: (:mod:`repro.store`); both are *execution* knobs, excluded from the
#: grid fingerprint, so turning a store on or off never orphans a
#: journal.  Version 5 records the backend's ``equivalence`` contract
#: (:data:`repro.backends.EQUIVALENCE_CONTRACTS`) in the serialized
#: payload — derived from the backend, never set directly — so resume
#: refuses to continue a journal whose recorded contract (say
#: ``bitwise``) no longer matches what the named backend now promises
#: (say ``statistical``): the journal's completed units and the new
#: units would not be draw-compatible.  Version 1–4 payloads are still
#: readable (see :meth:`from_dict`).
SPEC_VERSION = 5

#: Spec fields that configure execution machinery rather than the work
#: grid; scrubbed from the fingerprint so toggling them preserves
#: journal identity (resume with a store, record without one, etc.).
#: ``equivalence`` is derived metadata about the backend (already a
#: grid field), so it is scrubbed too — v4 journals fingerprint
#: identically under v5.
_NON_GRID_FIELDS = ("store_path", "store_policy", "equivalence")

#: Identifies one work unit across processes and resumed campaigns.
UnitKey = Tuple[str, int, str, str]  # (kind name, env_key, device, test)


class CampaignError(ReproError):
    """Raised for malformed specs, journals, or failed campaigns."""


def payload_fingerprint(payload: Dict[str, Any]) -> str:
    """The grid fingerprint of one serialized spec payload.

    Hashes the payload *as given* (minus the non-grid execution
    fields), which is exactly how every historical spec version
    computed its fingerprint — version 1–3 payloads have no non-grid
    fields, so hashing a v1 journal header's stored payload reproduces
    the fingerprint that header recorded.  This is what lets
    :meth:`repro.campaign.journal.CampaignJournal.load_spec` validate
    headers written by any spec version without re-serializing them
    through the current :meth:`CampaignSpec.to_dict`.
    """
    scrubbed = {
        key: value
        for key, value in payload.items()
        if key not in _NON_GRID_FIELDS
    }
    canonical = json.dumps(scrubbed, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class WorkUnit:
    """One (kind, environment, device, test) cell of the campaign grid."""

    index: int
    kind: EnvironmentKind
    env_key: int
    device_name: str
    test_name: str

    @property
    def key(self) -> UnitKey:
        return (self.kind.name, self.env_key, self.device_name,
                self.test_name)

    def seed_sequence(self, campaign_seed: int) -> np.random.SeedSequence:
        return unit_seed_sequence(
            campaign_seed, self.env_key, self.device_name, self.test_name
        )

    def rng(self, campaign_seed: int) -> np.random.Generator:
        return np.random.default_rng(self.seed_sequence(campaign_seed))


@dataclass(frozen=True)
class CampaignSpec:
    """A deterministic grid of work units plus execution knobs.

    The unit order matches :meth:`Runner.run_matrix` (environments
    outermost, then devices, then tests, one block per kind), so a
    campaign assembled in unit order is byte-identical to the serial
    tuning path for the same seed.
    """

    name: str = "campaign"
    kinds: Tuple[str, ...] = tuple(kind.name for kind in EnvironmentKind)
    device_names: Tuple[str, ...] = ("NVIDIA", "AMD", "Intel", "M1")
    test_names: Tuple[str, ...] = ()
    environment_count: int = 150
    seed: int = 0
    iterations_override: Optional[int] = None
    backend: str = "analytic"
    buggy: bool = False
    max_operational_instances: Optional[int] = None
    #: Path to a synthesized-suite JSON file; when set, workers resolve
    #: test names from that suite before the built-in registries.
    suite_path: Optional[str] = None
    #: Directory of the persistent :mod:`repro.store` result store.
    store_path: Optional[str] = None
    #: ``"off"`` (no store), ``"record"`` (write completed units), or
    #: ``"reuse"`` (skip execution of units the store already knows,
    #: and record the rest).
    store_policy: str = "off"
    _kind_members: Tuple[EnvironmentKind, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.kinds:
            raise CampaignError("a campaign needs at least one kind")
        if not self.device_names:
            raise CampaignError("a campaign needs at least one device")
        if not self.test_names:
            raise CampaignError("a campaign needs at least one test")
        if self.environment_count < 0:
            raise CampaignError("environment_count must be non-negative")
        # One validation point for backend names and options: the
        # repro.backends registry (imported lazily to avoid a cycle).
        from repro.backends import make_backend

        try:
            make_backend(
                self.backend,
                max_operational_instances=self.max_operational_instances,
            )
        except EnvironmentError_ as error:
            raise CampaignError(str(error))
        from repro.store import STORE_POLICIES

        if self.store_policy not in STORE_POLICIES:
            raise CampaignError(
                f"unknown store_policy: {self.store_policy!r} "
                f"(want one of {', '.join(STORE_POLICIES)})"
            )
        try:
            members = tuple(EnvironmentKind[name] for name in self.kinds)
        except KeyError as error:
            raise CampaignError(f"unknown environment kind: {error}")
        object.__setattr__(self, "_kind_members", members)

    # -- the grid ---------------------------------------------------------

    @property
    def kind_members(self) -> Tuple[EnvironmentKind, ...]:
        return self._kind_members

    def environments(self, kind: EnvironmentKind) -> List[TestingEnvironment]:
        """The (regenerated, deterministic) environments of one kind."""
        return environments_for(kind, self.environment_count, self.seed)

    def units(self) -> List[WorkUnit]:
        """Every work unit, in canonical (serial-path) order."""
        units: List[WorkUnit] = []
        for kind in self.kind_members:
            for environment in self.environments(kind):
                for device_name in self.device_names:
                    for test_name in self.test_names:
                        units.append(
                            WorkUnit(
                                index=len(units),
                                kind=kind,
                                env_key=environment.env_key,
                                device_name=device_name,
                                test_name=test_name,
                            )
                        )
        return units

    def unit_count(self) -> int:
        per_kind = len(self.device_names) * len(self.test_names)
        total = 0
        for kind in self.kind_members:
            envs = 1 if not kind.stressed else self.environment_count
            total += envs * per_kind
        return total

    # -- identity ---------------------------------------------------------

    def equivalence(self) -> str:
        """The selected backend's equivalence contract (derived)."""
        from repro.backends import resolve

        return resolve(self.backend).equivalence

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "equivalence": self.equivalence(),
            "name": self.name,
            "kinds": list(self.kinds),
            "device_names": list(self.device_names),
            "test_names": list(self.test_names),
            "environment_count": self.environment_count,
            "seed": self.seed,
            "iterations_override": self.iterations_override,
            "backend": self.backend,
            "buggy": self.buggy,
            "max_operational_instances": self.max_operational_instances,
            "suite_path": self.suite_path,
            "store_path": self.store_path,
            "store_policy": self.store_policy,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        version = payload.get("version")
        if version == 1:
            # Version 1 called the backend "mode" and always carried a
            # max_operational_instances, even for backends that ignored
            # it; keep the cap only where it was actually in effect.
            backend = payload.get("mode", "analytic")
            cap = payload.get("max_operational_instances")
            if backend != "operational":
                cap = None
        elif version in (2, 3, 4, SPEC_VERSION):
            backend = payload.get("backend", "analytic")
            cap = payload.get("max_operational_instances")
        else:
            raise CampaignError(
                f"unsupported campaign spec version: {version!r}"
            )
        # Version 5 payloads carry the backend's equivalence contract;
        # a journal recorded under one contract must not silently
        # resume under another (completed bitwise units are not
        # draw-compatible with a statistical backend's, and vice
        # versa).  Pre-v5 payloads recorded no contract, so the check
        # is keyed on the version, not on the key's presence, and they
        # keep loading.
        recorded = (
            payload.get("equivalence") if version >= 5 else None
        )
        if recorded is not None:
            from repro.backends import resolve

            try:
                current = resolve(backend).equivalence
            except EnvironmentError_ as error:
                raise CampaignError(str(error))
            if recorded != current:
                raise CampaignError(
                    f"campaign was recorded under the {recorded!r} "
                    f"equivalence contract, but backend {backend!r} "
                    f"now promises {current!r}; refusing to mix "
                    f"contracts across resume — start a fresh "
                    f"campaign (or pick a {recorded!r} backend)"
                )
        try:
            return cls(
                name=payload["name"],
                kinds=tuple(payload["kinds"]),
                device_names=tuple(payload["device_names"]),
                test_names=tuple(payload["test_names"]),
                environment_count=payload["environment_count"],
                seed=payload["seed"],
                iterations_override=payload["iterations_override"],
                backend=backend,
                buggy=payload.get("buggy", False),
                max_operational_instances=cap,
                suite_path=payload.get("suite_path"),
                store_path=payload.get("store_path"),
                store_policy=payload.get("store_policy", "off"),
            )
        except KeyError as error:
            raise CampaignError(f"malformed campaign spec: missing {error}")

    def fingerprint(self) -> str:
        """A stable identity for resume-compatibility checks."""
        return payload_fingerprint(self.to_dict())


def paper_spec(
    test_names: Sequence[str],
    environment_count: int = 150,
    seed: int = 42,
    kinds: Optional[Sequence[str]] = None,
    device_names: Optional[Sequence[str]] = None,
    name: str = "reproduce-all",
    backend: str = "analytic",
    max_operational_instances: Optional[int] = None,
    suite_path: Optional[str] = None,
    store_path: Optional[str] = None,
    store_policy: str = "off",
) -> CampaignSpec:
    """The full Sec. 5.1 evaluation grid (scaled by arguments)."""
    return CampaignSpec(
        name=name,
        kinds=tuple(kinds) if kinds else tuple(
            kind.name for kind in EnvironmentKind
        ),
        device_names=tuple(device_names) if device_names
        else ("NVIDIA", "AMD", "Intel", "M1"),
        test_names=tuple(test_names),
        environment_count=environment_count,
        seed=seed,
        backend=backend,
        max_operational_instances=max_operational_instances,
        suite_path=suite_path,
        store_path=store_path,
        store_policy=store_policy,
    )


def smoke_spec(
    test_names: Sequence[str],
    seed: int = 0,
    backend: str = "analytic",
    max_operational_instances: Optional[int] = None,
    suite_path: Optional[str] = None,
    store_path: Optional[str] = None,
    store_policy: str = "off",
) -> CampaignSpec:
    """A seconds-scale spec for CI smoke runs (`campaign run --smoke`)."""
    return CampaignSpec(
        name="smoke",
        kinds=("SITE_BASELINE", "PTE"),
        device_names=("AMD", "Intel"),
        test_names=tuple(test_names[:4]),
        environment_count=3,
        seed=seed,
        backend=backend,
        max_operational_instances=max_operational_instances,
        suite_path=suite_path,
        store_path=store_path,
        store_policy=store_policy,
    )
