"""The campaign journal: an append-only JSONL checkpoint store.

Every completed work unit is appended as one self-contained JSONL
record the moment its result reaches the scheduler, so a killed
campaign loses at most the in-flight units.  Resuming re-reads the
journal, skips every recorded unit, and continues; resuming a finished
campaign is a no-op.  The first line is a header binding the journal
to its spec fingerprint — resuming against a different grid is an
error, not silent corruption.

A sidecar lock file (``<journal>.lock``, holding the owner's pid)
makes writers mutually exclusive: two processes resuming the same
journal would interleave appends and double-execute units, so the
second acquirer is refused while the first is alive.  A lock left by
a SIGKILLed process is detected (the pid is gone) and stolen, which
is what lets a restarted service re-adopt every in-flight job.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, TextIO, Union

from repro.analysis.serialize import (
    iter_jsonl,
    jsonl_line,
    tagged_run_from_dict,
    tagged_run_to_dict,
)
from repro.env.environment import EnvironmentKind
from repro.env.runner import TestRun
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    UnitKey,
    WorkUnit,
    payload_fingerprint,
)

JOURNAL_VERSION = 1


@dataclass
class JournalRecord:
    """One completed unit as recovered from disk."""

    index: int
    key: UnitKey
    kind: EnvironmentKind
    run: TestRun
    elapsed: float
    attempts: int


class CampaignJournal:
    """Append-only JSONL store of completed work units."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None
        self._locked = False

    # -- writer lock -------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def lock_owner(self) -> Optional[int]:
        """The pid in the lock file, or ``None`` when unlocked."""
        try:
            return int(self.lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # exists, owned by someone else
        except OSError:
            return False
        return True

    def acquire_lock(self) -> None:
        """Become this journal's sole writer, or refuse.

        A live lock (its pid still runs) raises :class:`CampaignError`;
        a stale lock (crashed or SIGKILLed owner) is stolen.
        """
        if self._locked:
            return
        for _ in range(8):  # bounded steal-vs-race retries
            try:
                fd = os.open(
                    self.lock_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                owner = self.lock_owner()
                if owner is not None and self._pid_alive(owner):
                    raise CampaignError(
                        f"journal {self.path} is locked by running "
                        f"process {owner}; refusing concurrent resume"
                    )
                try:  # stale: owner is gone — steal and retry
                    self.lock_path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}\n")
            self._locked = True
            return
        raise CampaignError(
            f"could not acquire lock for journal {self.path}"
        )

    def release_lock(self) -> None:
        if not self._locked:
            return
        self._locked = False
        try:
            self.lock_path.unlink()
        except OSError:
            pass

    # -- creation / recovery ----------------------------------------------

    @classmethod
    def create(
        cls, path: Union[str, Path], spec: CampaignSpec
    ) -> "CampaignJournal":
        """Start a journal for ``spec``, or adopt a compatible one.

        An existing journal is reused iff its header fingerprint
        matches the spec — that is what makes ``campaign run`` safely
        re-runnable and ``resume`` exact.
        """
        journal = cls(path)
        if journal.path.exists() and journal.path.stat().st_size > 0:
            existing = journal.load_spec()
            if existing.fingerprint() != spec.fingerprint():
                raise CampaignError(
                    f"journal {journal.path} belongs to campaign "
                    f"{existing.name!r} (fingerprint "
                    f"{existing.fingerprint()}); refusing to mix it "
                    f"with {spec.name!r} ({spec.fingerprint()})"
                )
            return journal
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "type": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
        }
        with open(journal.path, "w") as handle:
            handle.write(jsonl_line(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    def _records_raw(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            raise CampaignError(f"no journal at {self.path}")
        records = iter_jsonl(self.path, tolerate_truncated_tail=True)
        if not records or records[0].get("type") != "header":
            raise CampaignError(f"{self.path} has no campaign header")
        version = records[0].get("version")
        if version != JOURNAL_VERSION:
            raise CampaignError(
                f"unsupported journal version: {version!r}"
            )
        return records

    def load_spec(self) -> CampaignSpec:
        """The spec this journal was opened for.

        The header records both the spec payload and its fingerprint;
        a disagreement between them means the file was edited or
        corrupted, and resuming against it would silently mix
        incompatible results — refuse instead.

        The recorded fingerprint is validated against the *stored*
        payload (:func:`~repro.campaign.spec.payload_fingerprint`),
        not against a re-serialization through the current spec
        version — that is what keeps journals written by spec v1–v3
        loadable and resumable after every version bump.
        """
        header = self._records_raw()[0]
        spec = CampaignSpec.from_dict(header["spec"])
        recorded = header.get("fingerprint")
        if recorded != payload_fingerprint(header["spec"]):
            raise CampaignError(
                f"{self.path}: header fingerprint {recorded!r} does "
                f"not match its spec payload; the journal was "
                f"modified — refusing to resume"
            )
        return spec

    def load_records(self) -> List[JournalRecord]:
        """Every completed unit on disk (torn tail line ignored)."""
        records: List[JournalRecord] = []
        for payload in self._records_raw()[1:]:
            if payload.get("type") != "unit":
                continue
            try:
                kind, run = tagged_run_from_dict(payload["run"])
                records.append(
                    JournalRecord(
                        index=payload["index"],
                        key=tuple(payload["unit"]),  # type: ignore[arg-type]
                        kind=kind,
                        run=run,
                        elapsed=payload.get("elapsed", 0.0),
                        attempts=payload.get("attempts", 1),
                    )
                )
            except KeyError as error:
                raise CampaignError(
                    f"malformed journal record in {self.path}: "
                    f"missing {error}"
                )
        return records

    def completed_keys(self) -> Set[UnitKey]:
        return {record.key for record in self.load_records()}

    # -- appending ---------------------------------------------------------

    def repair(self) -> None:
        """Truncate the torn trailing record a crash may have left.

        A record is only considered written once its newline landed;
        appending after a partial write would otherwise splice two
        records into one corrupt line.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        last_newline = data.rfind(b"\n")
        with open(self.path, "wb") as handle:
            handle.write(data[: last_newline + 1])
            handle.flush()
            os.fsync(handle.fileno())

    def append(
        self, unit: WorkUnit, run: TestRun, elapsed: float, attempts: int
    ) -> None:
        """Durably record one completed unit (flushed per record)."""
        payload = {
            "type": "unit",
            "index": unit.index,
            "unit": list(unit.key),
            "run": tagged_run_to_dict(unit.kind, run),
            "elapsed": round(elapsed, 6),
            "attempts": attempts,
        }
        if self._handle is None:
            self.repair()
            self._handle = open(self.path, "a")
        self._handle.write(jsonl_line(payload) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
