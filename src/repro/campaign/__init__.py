"""Campaign orchestration: the production layer over the runner.

Turns "run the evaluation" into a first-class service: a declarative
:class:`CampaignSpec` grid, a sharded multiprocessing executor with
per-unit timeouts and bounded retry, an append-only JSONL journal for
exact checkpoint/resume, and per-worker telemetry.  Sits between
:mod:`repro.env` (which executes one unit) and :mod:`repro.analysis`
(which aggregates the assembled :class:`TuningResult` objects).

Quick tour:

>>> from repro.campaign import CampaignSpec, ExecutorConfig, run_campaign
>>> spec = CampaignSpec(
...     kinds=("PTE",), device_names=("AMD",),
...     test_names=("rev_poloc_rr_w_mut",), environment_count=4,
... )
>>> outcome = run_campaign(
...     spec, journal_path="campaign.jsonl",
...     config=ExecutorConfig(workers=4),
... )                                               # doctest: +SKIP
>>> outcome.results                                 # doctest: +SKIP
{<EnvironmentKind.PTE>: TuningResult(...)}
"""

from repro.campaign.journal import CampaignJournal, JournalRecord
from repro.campaign.metrics import CampaignMetrics, WorkerCounters
from repro.campaign.scheduler import (
    CampaignFailure,
    CampaignOutcome,
    CampaignScheduler,
    CampaignStatus,
    ExecutorConfig,
    assemble_results,
    campaign_status,
    resume_campaign,
    run_campaign,
    verify_order_independence,
)
from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    UnitKey,
    WorkUnit,
    paper_spec,
    smoke_spec,
)
from repro.campaign.worker import (
    FaultPlan,
    ShardResult,
    TransientWorkerError,
    UnitOutcome,
)

__all__ = [
    "CampaignError",
    "CampaignFailure",
    "CampaignJournal",
    "CampaignMetrics",
    "CampaignOutcome",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStatus",
    "ExecutorConfig",
    "FaultPlan",
    "JournalRecord",
    "ShardResult",
    "TransientWorkerError",
    "UnitKey",
    "UnitOutcome",
    "WorkUnit",
    "WorkerCounters",
    "assemble_results",
    "campaign_status",
    "paper_spec",
    "resume_campaign",
    "run_campaign",
    "smoke_spec",
    "verify_order_independence",
]
