"""Worker-side execution of campaign work units.

Each worker process is initialised once per campaign (suite built,
devices and environments materialised from the spec) and then executes
*shards* — batches of unit indices — returning picklable per-unit
outcomes.  Per-unit work runs under a soft deadline (SIGALRM where
available), and a transient failure in one unit never discards the
rest of its shard: the scheduler retries exactly the failed unit.

The same module drives serial execution: the scheduler's in-process
fallback calls :func:`initialize_worker` / :func:`execute_shard`
directly, so both paths share one code path per unit.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.serialize import run_to_dict
from repro.campaign.metrics import record_unit
from repro.env.environment import TestingEnvironment
from repro.env.runner import Runner, oracle_cache_stats
from repro.errors import ReproError
from repro.gpu.device import Device, make_device
from repro.campaign.spec import CampaignError, CampaignSpec, WorkUnit
from repro.obs.registry import MetricsRegistry


#: Environment-variable fault injection for drift-detection testing.
#: Unlike :class:`FaultPlan` (transient, retried failures), these
#: simulate *silent implementation drift*: the spec — and therefore
#: the grid fingerprint the run ledger matches baselines by — is
#: unchanged, but the results or timings shift.  ``REPRO_FAULT_
#: BUGGY_DEVICES`` (any non-empty value) builds every device with its
#: known bugs enabled regardless of ``spec.buggy``; ``REPRO_FAULT_
#: UNIT_SLEEP_FACTOR`` (a float) stretches every unit's measured wall
#: time by that fraction inside the timed window.
FAULT_BUGGY_ENV = "REPRO_FAULT_BUGGY_DEVICES"
FAULT_SLEEP_ENV = "REPRO_FAULT_UNIT_SLEEP_FACTOR"


def _fault_buggy_devices() -> bool:
    return bool(os.environ.get(FAULT_BUGGY_ENV, "").strip())


def _fault_sleep_factor() -> float:
    raw = os.environ.get(FAULT_SLEEP_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return 0.0


class UnitTimeout(ReproError):
    """A work unit exceeded its per-unit deadline."""


class TransientWorkerError(ReproError):
    """An injected or transient failure; the scheduler may retry."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic failure injection for retry/backoff testing.

    Units in ``unit_indices`` fail with :class:`TransientWorkerError`
    on their first ``failures`` attempts.  Attempt counts live in
    ``marker_dir`` files so they are consistent across worker
    processes (a retry may land on a different worker).
    """

    unit_indices: Tuple[int, ...]
    failures: int
    marker_dir: str

    def should_fail(self, index: int) -> bool:
        if index not in self.unit_indices:
            return False
        marker = Path(self.marker_dir) / f"unit-{index}.attempts"
        attempts = (
            int(marker.read_text()) if marker.exists() else 0
        )
        marker.write_text(str(attempts + 1))
        return attempts < self.failures

    def to_payload(self) -> Dict[str, Any]:
        return {
            "unit_indices": list(self.unit_indices),
            "failures": self.failures,
            "marker_dir": self.marker_dir,
        }

    @classmethod
    def from_payload(
        cls, payload: Optional[Dict[str, Any]]
    ) -> Optional["FaultPlan"]:
        if payload is None:
            return None
        return cls(
            unit_indices=tuple(payload["unit_indices"]),
            failures=payload["failures"],
            marker_dir=payload["marker_dir"],
        )


@dataclass
class UnitOutcome:
    """The picklable result of one unit attempt.

    Per-unit telemetry (timings, oracle-cache lookups) no longer rides
    on the outcome: workers fold it into a process-local
    :class:`~repro.obs.registry.MetricsRegistry` and ship the drained
    snapshot once per shard on the :class:`ShardResult`.
    """

    index: int
    worker_id: str
    elapsed: float
    run: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return self.run is not None


@dataclass
class ShardResult:
    """One shard's outcomes plus the worker's telemetry deltas.

    ``metrics`` is the always-on campaign registry snapshot (unit
    timings, oracle lookups) drained since the previous shard;
    ``obs`` is the optional full recorder payload (backend/ cache
    metrics, spans, events) when observability is enabled, else
    ``None``.  Both are deltas, so the scheduler can merge shard
    results in any arrival order and get exact totals.
    """

    outcomes: List[UnitOutcome]
    worker_id: str
    metrics: Optional[Dict[str, Any]] = None
    obs: Optional[Dict[str, Any]] = None


#: Always-on per-process campaign telemetry, independent of the global
#: obs recorder so the end-of-run report works with obs disabled.
_UNIT_METRICS = MetricsRegistry()


def drain_unit_metrics() -> Dict[str, Any]:
    """Snapshot-and-reset this process's campaign unit telemetry."""
    return _UNIT_METRICS.drain()


@dataclass
class WorkerState:
    """Everything a worker needs, materialised once from the spec."""

    spec: CampaignSpec
    runner: Runner
    devices: Dict[str, Device]
    tests: Dict[str, Any]
    environments: Dict[Tuple[str, int], TestingEnvironment]
    units: List[WorkUnit]
    fault_plan: Optional[FaultPlan] = None
    worker_id: str = field(
        default_factory=lambda: f"pid-{os.getpid()}"
    )


_STATE: Optional[WorkerState] = None

#: Materialised worker states keyed by spec fingerprint.  A persistent
#: service pool executes shards for *many* campaigns over the lifetime
#: of one worker process; caching by fingerprint makes switching specs
#: free after the first shard of each.  Bounded so a long-lived daemon
#: serving thousands of jobs cannot grow worker memory without limit.
_STATE_CACHE: Dict[str, WorkerState] = {}
_STATE_CACHE_CAPACITY = 4
_STATE_LOCK = threading.Lock()


def state_for(spec_payload: Dict[str, Any]) -> WorkerState:
    """The cached (or freshly built) state for one spec payload.

    Eviction is least-recently-used over spec fingerprints.  Thread-
    safe because the service may run shards on a thread pool when a
    process pool is unavailable.
    """
    spec = CampaignSpec.from_dict(spec_payload)
    # Fault injection changes the materialised devices without
    # changing the fingerprint (that is its entire point), so it must
    # participate in the cache key or a flipped knob could serve a
    # stale state within one process.
    fingerprint = spec.fingerprint() + (
        ":faulty" if _fault_buggy_devices() else ""
    )
    with _STATE_LOCK:
        state = _STATE_CACHE.pop(fingerprint, None)
        if state is not None:
            _STATE_CACHE[fingerprint] = state  # re-insert: now newest
            return state
    state = build_state(spec)
    with _STATE_LOCK:
        _STATE_CACHE[fingerprint] = state
        while len(_STATE_CACHE) > _STATE_CACHE_CAPACITY:
            _STATE_CACHE.pop(next(iter(_STATE_CACHE)))
    return state


def _resolve_test(name: str, synthesized=None):
    """Resolve a test name like the CLI does: the campaign's
    synthesized suite (when the spec names one), then the built-in
    suite, library, and extended library."""
    from repro.litmus import extended, library
    from repro.mutation import default_suite

    if synthesized is not None:
        try:
            return synthesized.find(name)
        except KeyError:
            pass
    suite = default_suite()
    try:
        return suite.find(name)
    except KeyError:
        pass
    try:
        return library.by_name(name)
    except KeyError:
        pass
    try:
        return extended.by_name(name)
    except KeyError:
        raise CampaignError(f"unknown test in campaign spec: {name!r}")


def build_state(
    spec: CampaignSpec, fault_plan: Optional[FaultPlan] = None
) -> WorkerState:
    """Materialise devices, tests, and environments for one process."""
    runner = Runner(
        backend=spec.backend,
        max_operational_instances=spec.max_operational_instances,
        iterations_override=spec.iterations_override,
    )
    devices = {
        name: make_device(
            name, buggy=spec.buggy or _fault_buggy_devices()
        )
        for name in spec.device_names
    }
    synthesized = None
    if spec.suite_path is not None:
        from repro.synthesis import SynthesisError, load_suite

        try:
            synthesized = load_suite(spec.suite_path)
        except SynthesisError as error:
            raise CampaignError(
                f"campaign names a synthesized suite that cannot be "
                f"loaded: {error}"
            )
    tests = {
        name: _resolve_test(name, synthesized)
        for name in spec.test_names
    }
    environments: Dict[Tuple[str, int], TestingEnvironment] = {}
    for kind in spec.kind_members:
        for environment in spec.environments(kind):
            environments[(kind.name, environment.env_key)] = environment
    return WorkerState(
        spec=spec,
        runner=runner,
        devices=devices,
        tests=tests,
        environments=environments,
        units=spec.units(),
        fault_plan=fault_plan,
    )


def initialize_worker(
    spec_payload: Dict[str, Any],
    fault_payload: Optional[Dict[str, Any]] = None,
    obs_payload: Optional[Dict[str, Any]] = None,
) -> None:
    """Process-pool initializer: build this worker's state once.

    ``obs_payload`` is the scheduler recorder's configuration (or
    ``None`` when observability is disabled); it makes every worker
    record with the same capacities/sampling as the scheduler.
    """
    global _STATE
    obs.configure(obs_payload)
    _STATE = build_state(
        CampaignSpec.from_dict(spec_payload),
        FaultPlan.from_payload(fault_payload),
    )


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """A soft per-unit deadline via SIGALRM, where the platform has it.

    Workers are single-threaded processes, so an interval timer in the
    worker is the cheapest preemption we can get; on platforms without
    SIGALRM the deadline degrades to "no timeout" and the scheduler's
    shard-level watchdog still applies.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        # signal handlers can only be installed from the main thread;
        # on a thread-pool fallback the shard watchdog still applies.
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise UnitTimeout(f"unit exceeded {seconds:.3f}s deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_unit(
    state: WorkerState,
    index: int,
    timeout: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> UnitOutcome:
    """Run one work unit, returning a picklable outcome (never raises).

    ``metrics`` is the registry unit telemetry lands in; shard
    execution passes a private per-shard registry so concurrent shards
    (thread-pool mode) never mix their deltas, while the scheduler's
    serial path keeps the module-level one it drains after every unit.
    """
    rec = obs.recorder()
    registry = metrics if metrics is not None else _UNIT_METRICS
    started = time.perf_counter()
    before = oracle_cache_stats()
    try:
        unit = state.units[index]
        if state.fault_plan is not None and state.fault_plan.should_fail(
            index
        ):
            raise TransientWorkerError(
                f"injected transient failure for unit {index}"
            )
        with _deadline(timeout):
            with rec.span(
                "campaign.unit",
                index=index,
                test=unit.test_name,
                device=unit.device_name,
            ):
                run = state.runner.run(
                    state.devices[unit.device_name],
                    state.tests[unit.test_name],
                    state.environments[(unit.kind.name, unit.env_key)],
                    unit.rng(state.spec.seed),
                )
        after = oracle_cache_stats()
        sleep_factor = _fault_sleep_factor()
        if sleep_factor > 0:
            # Inside the timed window on purpose: the injected
            # slowdown must be visible to every latency metric.
            time.sleep(sleep_factor * (time.perf_counter() - started))
        elapsed = time.perf_counter() - started
        record_unit(
            registry,
            state.worker_id,
            elapsed=elapsed,
            sim_seconds=run.seconds,
            oracle_hits=after.hits - before.hits,
            oracle_misses=after.misses - before.misses,
        )
        if rec.enabled:
            rec.observe(
                "repro_backend_unit_seconds",
                elapsed,
                {"backend": state.spec.backend},
            )
        return UnitOutcome(
            index=index,
            worker_id=state.worker_id,
            elapsed=elapsed,
            run=run_to_dict(run),
        )
    except UnitTimeout as error:
        return UnitOutcome(
            index=index,
            worker_id=state.worker_id,
            elapsed=time.perf_counter() - started,
            error=str(error),
            timed_out=True,
        )
    except Exception as error:  # transient or real: scheduler decides
        return UnitOutcome(
            index=index,
            worker_id=state.worker_id,
            elapsed=time.perf_counter() - started,
            error=f"{type(error).__name__}: {error}",
        )


def _shard_result(
    state: WorkerState,
    indices: Sequence[int],
    timeout: Optional[float] = None,
) -> ShardResult:
    """Run one shard against a state with a private metrics registry."""
    local = MetricsRegistry()
    outcomes = [
        execute_unit(state, index, timeout, metrics=local)
        for index in indices
    ]
    obs.publish_cache_metrics()
    return ShardResult(
        outcomes=outcomes,
        worker_id=state.worker_id,
        metrics=local.drain(),
        obs=obs.recorder().drain(),
    )


def execute_shard(
    indices: Sequence[int], timeout: Optional[float] = None
) -> ShardResult:
    """Pool task entry point: run a shard in this worker's state."""
    if _STATE is None:
        raise CampaignError(
            "worker used before initialize_worker() ran"
        )
    return _shard_result(_STATE, indices, timeout)


def initialize_service_worker(
    obs_payload: Optional[Dict[str, Any]] = None,
) -> None:
    """Pool initializer for the *shared* service pool.

    Unlike :func:`initialize_worker` no spec is pinned: the pool
    outlives any one campaign, and :func:`execute_shard_for` resolves
    (and caches) state per spec payload instead.
    """
    obs.configure(obs_payload)


def execute_shard_for(
    spec_payload: Dict[str, Any],
    indices: Sequence[int],
    timeout: Optional[float] = None,
) -> ShardResult:
    """Run a shard of the given spec in this (shared-pool) worker."""
    return _shard_result(state_for(spec_payload), indices, timeout)
