"""Campaign telemetry: registry-backed counters and the run report.

Worker processes record per-unit telemetry (unit wall time, simulated
seconds, oracle-cache lookups) into a process-local
:class:`~repro.obs.registry.MetricsRegistry`; every shard result ships
the drained snapshot and the scheduler merges it here.  That replaces
the old per-field ``WorkerCounters`` plumbing: per-worker counters are
now *views* over the merged registry, and the same snapshots are what
``--metrics-out`` exports, so the operator report and the machine
artifact can never disagree.

Wall-clock accounting keeps two clocks on purpose:
``started_at``/``finished_at`` are ``time.monotonic()`` (immune to
clock steps, correct for durations) while ``started_at_utc``/
``finished_at_utc`` are absolute UTC timestamps, so journals and
exported metrics from *resumed* runs — separate processes with
unrelated monotonic epochs — can still be correlated on a shared
timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.analysis.report import ascii_table
from repro.obs.registry import MetricsRegistry

#: Metric families of the campaign layer; ``worker`` is the one label.
UNITS_METRIC = "repro_campaign_units_total"
UNIT_SECONDS_METRIC = "repro_campaign_unit_seconds"
BUSY_SECONDS_METRIC = "repro_campaign_busy_seconds_total"
SIM_SECONDS_METRIC = "repro_campaign_sim_seconds_total"
ORACLE_LOOKUPS_METRIC = "repro_campaign_oracle_lookups_total"
RETRIES_METRIC = "repro_campaign_retries_total"

#: Persistent result-store traffic, labelled ``op``/``outcome``
#: (``get``: hit/miss/corrupt; ``put``: write/skip).  Lives in this
#: module rather than :mod:`repro.store` because the store itself only
#: counts raw events — publication into a registry (and therefore into
#: exported artifacts) is a campaign/service concern.
STORE_EVENTS_METRIC = "repro_store_events_total"

#: ``(op, outcome)`` pairs pre-declared at zero whenever a store is in
#: play, so an exported artifact says "0 hits" explicitly instead of
#: omitting the family (same idiom as ``repro_cache_events_total``).
STORE_EVENT_KINDS = (
    ("get", "hit"),
    ("get", "miss"),
    ("get", "corrupt"),
    ("put", "write"),
    ("put", "skip"),
)


def publish_store_events(
    registry: MetricsRegistry,
    events: Mapping[Any, int],
    materialize: bool = True,
) -> None:
    """Fold drained store event counts into a metrics registry.

    ``events`` is :meth:`repro.store.ResultStore.drain_events` output
    (``(op, outcome) -> count``).  With ``materialize`` the standard
    event kinds are pre-declared at zero even when absent.
    """
    if materialize:
        for op, outcome in STORE_EVENT_KINDS:
            registry.counter(
                STORE_EVENTS_METRIC, {"op": op, "outcome": outcome}
            ).inc(0)
    for (op, outcome), count in events.items():
        registry.counter(
            STORE_EVENTS_METRIC, {"op": op, "outcome": outcome}
        ).inc(count)


@dataclass(frozen=True)
class WorkerCounters:
    """A read-only per-worker view over the merged registry."""

    worker_id: str
    units_done: int = 0
    retries: int = 0
    oracle_hits: int = 0
    oracle_misses: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0


def record_unit(
    registry: MetricsRegistry,
    worker_id: str,
    elapsed: float,
    sim_seconds: float,
    oracle_hits: int,
    oracle_misses: int,
) -> None:
    """Fold one completed unit into a campaign registry.

    Shared by the worker process (recording locally before a shard
    drain) and :meth:`CampaignMetrics.observe_unit` (recording
    directly at the scheduler), so both paths produce byte-identical
    snapshots.
    """
    labels = {"worker": worker_id}
    registry.counter(UNITS_METRIC, labels).inc()
    registry.histogram(UNIT_SECONDS_METRIC, labels).observe(elapsed)
    registry.counter(BUSY_SECONDS_METRIC, labels).inc(elapsed)
    registry.counter(SIM_SECONDS_METRIC, labels).inc(sim_seconds)
    if oracle_hits:
        registry.counter(
            ORACLE_LOOKUPS_METRIC, {**labels, "event": "hit"}
        ).inc(oracle_hits)
    if oracle_misses:
        registry.counter(
            ORACLE_LOOKUPS_METRIC, {**labels, "event": "miss"}
        ).inc(oracle_misses)


@dataclass
class CampaignMetrics:
    """Campaign-wide telemetry, aggregated from registry snapshots."""

    total_units: int = 0
    resumed_units: int = 0
    #: Units satisfied from the persistent result store this run.
    store_units: int = 0
    #: Whether a result store was attached to this run at all; the
    #: report renders the store line either way, but says so.
    store_active: bool = False
    units_failed: int = 0
    shards: int = 0
    serial_fallback: bool = False
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    started_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None
    #: Absolute UTC start/finish so resumed runs correlate on one
    #: timeline (monotonic epochs are per-process and incomparable).
    started_at_utc: float = field(default_factory=time.time)
    finished_at_utc: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def observe_unit(
        self,
        worker_id: str,
        elapsed: float,
        sim_seconds: float,
        oracle_hits: int,
        oracle_misses: int,
    ) -> None:
        """Record one completed unit directly (serial/in-test path)."""
        record_unit(
            self.registry, worker_id, elapsed, sim_seconds,
            oracle_hits, oracle_misses,
        )

    def observe_retry(self, worker_id: str, timed_out: bool) -> None:
        self.registry.counter(
            RETRIES_METRIC,
            {
                "worker": worker_id,
                "timed_out": "true" if timed_out else "false",
            },
        ).inc()

    def merge_worker_snapshot(
        self, payload: Optional[Mapping[str, Any]]
    ) -> None:
        """Fold a worker's drained campaign registry in."""
        self.registry.merge(payload)

    def absorb_store_events(self, events: Mapping[Any, int]) -> None:
        """Fold drained result-store counters in (zeros materialised)."""
        self.store_active = True
        publish_store_events(self.registry, events, materialize=True)

    def finish(self) -> None:
        self.finished_at = time.monotonic()
        self.finished_at_utc = time.time()

    # -- derived -----------------------------------------------------------

    def _family_by_worker(
        self, family: str, value_of=lambda counter: counter.value
    ) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for name, labels, counter in self.registry.iter_counters():
            if name != family:
                continue
            worker = dict(labels).get("worker", "?")
            totals[worker] = totals.get(worker, 0.0) + value_of(counter)
        return totals

    def _oracle_total(self, event: str) -> int:
        total = 0.0
        for name, labels, counter in self.registry.iter_counters():
            if (
                name == ORACLE_LOOKUPS_METRIC
                and dict(labels).get("event") == event
            ):
                total += counter.value
        return int(total)

    @property
    def units_done(self) -> int:
        return int(self.registry.family_total(UNITS_METRIC))

    @property
    def retries(self) -> int:
        return int(self.registry.family_total(RETRIES_METRIC))

    @property
    def timeouts(self) -> int:
        total = 0.0
        for name, labels, counter in self.registry.iter_counters():
            if (
                name == RETRIES_METRIC
                and dict(labels).get("timed_out") == "true"
            ):
                total += counter.value
        return int(total)

    @property
    def oracle_hits(self) -> int:
        return self._oracle_total("hit")

    @property
    def oracle_misses(self) -> int:
        return self._oracle_total("miss")

    def _store_total(self, op: str, outcome: str) -> int:
        total = 0.0
        for name, labels, counter in self.registry.iter_counters():
            if name != STORE_EVENTS_METRIC:
                continue
            label_map = dict(labels)
            if (
                label_map.get("op") == op
                and label_map.get("outcome") == outcome
            ):
                total += counter.value
        return int(total)

    @property
    def store_hits(self) -> int:
        return self._store_total("get", "hit")

    @property
    def store_misses(self) -> int:
        return self._store_total("get", "miss")

    @property
    def store_corrupt(self) -> int:
        return self._store_total("get", "corrupt")

    @property
    def store_writes(self) -> int:
        return self._store_total("put", "write")

    @property
    def store_skips(self) -> int:
        return self._store_total("put", "skip")

    @property
    def sim_seconds(self) -> float:
        return self.registry.family_total(SIM_SECONDS_METRIC)

    @property
    def workers(self) -> Dict[str, WorkerCounters]:
        """Per-worker views rebuilt from the merged registry."""
        units = self._family_by_worker(UNITS_METRIC)
        busy = self._family_by_worker(BUSY_SECONDS_METRIC)
        sim = self._family_by_worker(SIM_SECONDS_METRIC)
        retries = self._family_by_worker(RETRIES_METRIC)
        hits: Dict[str, float] = {}
        misses: Dict[str, float] = {}
        for name, labels, counter in self.registry.iter_counters():
            if name != ORACLE_LOOKUPS_METRIC:
                continue
            label_map = dict(labels)
            target = (
                hits if label_map.get("event") == "hit" else misses
            )
            worker = label_map.get("worker", "?")
            target[worker] = target.get(worker, 0.0) + counter.value
        worker_ids = (
            set(units) | set(busy) | set(retries) | set(hits)
            | set(misses)
        )
        return {
            worker_id: WorkerCounters(
                worker_id=worker_id,
                units_done=int(units.get(worker_id, 0)),
                retries=int(retries.get(worker_id, 0)),
                oracle_hits=int(hits.get(worker_id, 0)),
                oracle_misses=int(misses.get(worker_id, 0)),
                wall_seconds=busy.get(worker_id, 0.0),
                sim_seconds=sim.get(worker_id, 0.0),
            )
            for worker_id in worker_ids
        }

    @property
    def wall_seconds(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.monotonic()
        )
        return end - self.started_at

    @property
    def units_per_second(self) -> float:
        wall = self.wall_seconds
        return self.units_done / wall if wall > 0 else 0.0

    def progress_line(self) -> str:
        done = self.resumed_units + self.units_done
        total = max(self.total_units, 1)
        return (
            f"[campaign] {done}/{self.total_units} units "
            f"({100.0 * done / total:.1f}%), "
            f"{self.units_per_second:.0f} units/s, "
            f"{self.retries} retries, "
            f"{len(self.workers)} worker(s)"
        )

    def report(self) -> str:
        """The structured end-of-run report."""
        lookups = self.oracle_hits + self.oracle_misses
        hit_rate = self.oracle_hits / lookups if lookups else 0.0
        mode = "serial (fallback)" if self.serial_fallback else "sharded"
        workers = self.workers
        started = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.started_at_utc)
        )
        if self.store_active:
            lookups_s = self.store_hits + self.store_misses
            store_rate = self.store_hits / lookups_s if lookups_s else 0.0
            store_line = (
                f"result store: {self.store_hits} hits / "
                f"{self.store_misses} misses "
                f"({store_rate:.1%} hit rate), "
                f"{self.store_writes} written"
                + (f", {self.store_corrupt} corrupt"
                   if self.store_corrupt else "")
            )
        else:
            store_line = "result store: off"
        lines = [
            f"campaign execution: {mode}, "
            f"{len(workers)} worker(s), started {started}",
            f"units: {self.units_done} executed + "
            f"{self.resumed_units} resumed from journal + "
            f"{self.store_units} from store "
            f"/ {self.total_units} total"
            + (f" ({self.units_failed} FAILED)"
               if self.units_failed else ""),
            f"shards: {self.shards}, retries: {self.retries} "
            f"({self.timeouts} timeouts)",
            f"oracle cache: {self.oracle_hits} hits / "
            f"{self.oracle_misses} misses ({hit_rate:.1%} hit rate)",
            store_line,
            f"wall time: {self.wall_seconds:.2f}s "
            f"({self.units_per_second:.0f} units/s); "
            f"simulated device time: {self.sim_seconds:,.1f}s",
        ]
        if workers:
            rows: List[List[str]] = []
            for worker_id in sorted(workers):
                counters = workers[worker_id]
                rows.append(
                    [
                        counters.worker_id,
                        str(counters.units_done),
                        str(counters.retries),
                        f"{counters.oracle_hits}/"
                        f"{counters.oracle_misses}",
                        f"{counters.wall_seconds:.2f}",
                    ]
                )
            lines.append("")
            lines.append(
                ascii_table(
                    ["worker", "units", "retries", "oracle h/m",
                     "busy (s)"],
                    rows,
                    title="per-worker telemetry",
                )
            )
        return "\n".join(lines)
