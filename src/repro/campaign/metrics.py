"""Campaign telemetry: per-worker counters and the end-of-run report.

Workers report, with every unit result, how long the unit took and
what it did to the oracle cache; the scheduler folds those into
per-worker and campaign-wide counters.  The output is a structured
end-of-run report (and optional periodic progress lines) answering
the questions a campaign operator actually asks: how far along, how
fast, how much did memoization save, did anything retry or fail.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import ascii_table


@dataclass
class WorkerCounters:
    """What one worker process did over the campaign."""

    worker_id: str
    units_done: int = 0
    retries: int = 0
    oracle_hits: int = 0
    oracle_misses: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    def observe(
        self,
        elapsed: float,
        sim_seconds: float,
        oracle_hits: int,
        oracle_misses: int,
    ) -> None:
        self.units_done += 1
        self.wall_seconds += elapsed
        self.sim_seconds += sim_seconds
        self.oracle_hits += oracle_hits
        self.oracle_misses += oracle_misses


@dataclass
class CampaignMetrics:
    """Campaign-wide counters, aggregated from worker reports."""

    total_units: int = 0
    resumed_units: int = 0
    units_done: int = 0
    units_failed: int = 0
    retries: int = 0
    timeouts: int = 0
    shards: int = 0
    serial_fallback: bool = False
    workers: Dict[str, WorkerCounters] = field(default_factory=dict)
    started_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def worker(self, worker_id: str) -> WorkerCounters:
        counters = self.workers.get(worker_id)
        if counters is None:
            counters = WorkerCounters(worker_id=worker_id)
            self.workers[worker_id] = counters
        return counters

    def observe_unit(
        self,
        worker_id: str,
        elapsed: float,
        sim_seconds: float,
        oracle_hits: int,
        oracle_misses: int,
    ) -> None:
        self.units_done += 1
        self.worker(worker_id).observe(
            elapsed, sim_seconds, oracle_hits, oracle_misses
        )

    def observe_retry(self, worker_id: str, timed_out: bool) -> None:
        self.retries += 1
        if timed_out:
            self.timeouts += 1
        self.worker(worker_id).retries += 1

    def finish(self) -> None:
        self.finished_at = time.monotonic()

    # -- derived -----------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.monotonic()
        )
        return end - self.started_at

    @property
    def oracle_hits(self) -> int:
        return sum(w.oracle_hits for w in self.workers.values())

    @property
    def oracle_misses(self) -> int:
        return sum(w.oracle_misses for w in self.workers.values())

    @property
    def sim_seconds(self) -> float:
        return sum(w.sim_seconds for w in self.workers.values())

    @property
    def units_per_second(self) -> float:
        wall = self.wall_seconds
        return self.units_done / wall if wall > 0 else 0.0

    def progress_line(self) -> str:
        done = self.resumed_units + self.units_done
        total = max(self.total_units, 1)
        return (
            f"[campaign] {done}/{self.total_units} units "
            f"({100.0 * done / total:.1f}%), "
            f"{self.units_per_second:.0f} units/s, "
            f"{self.retries} retries, "
            f"{len(self.workers)} worker(s)"
        )

    def report(self) -> str:
        """The structured end-of-run report."""
        lookups = self.oracle_hits + self.oracle_misses
        hit_rate = self.oracle_hits / lookups if lookups else 0.0
        mode = "serial (fallback)" if self.serial_fallback else "sharded"
        lines = [
            f"campaign execution: {mode}, "
            f"{len(self.workers)} worker(s)",
            f"units: {self.units_done} executed + "
            f"{self.resumed_units} resumed from journal "
            f"/ {self.total_units} total"
            + (f" ({self.units_failed} FAILED)"
               if self.units_failed else ""),
            f"shards: {self.shards}, retries: {self.retries} "
            f"({self.timeouts} timeouts)",
            f"oracle cache: {self.oracle_hits} hits / "
            f"{self.oracle_misses} misses ({hit_rate:.1%} hit rate)",
            f"wall time: {self.wall_seconds:.2f}s "
            f"({self.units_per_second:.0f} units/s); "
            f"simulated device time: {self.sim_seconds:,.1f}s",
        ]
        if self.workers:
            rows: List[List[str]] = []
            for worker_id in sorted(self.workers):
                counters = self.workers[worker_id]
                rows.append(
                    [
                        counters.worker_id,
                        str(counters.units_done),
                        str(counters.retries),
                        f"{counters.oracle_hits}/"
                        f"{counters.oracle_misses}",
                        f"{counters.wall_seconds:.2f}",
                    ]
                )
            lines.append("")
            lines.append(
                ascii_table(
                    ["worker", "units", "retries", "oracle h/m",
                     "busy (s)"],
                    rows,
                    title="per-worker telemetry",
                )
            )
        return "\n".join(lines)
