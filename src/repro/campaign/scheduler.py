"""The sharded campaign executor.

Partitions a spec's pending work units into shards, runs them on a
``multiprocessing`` pool (``workers`` defaults to ``os.cpu_count()``),
journals every completed unit the moment it arrives, and retries
transient per-unit failures with exponential backoff.  When the pool
cannot start — or dies mid-campaign — execution degrades gracefully to
the serial in-process path, which shares the exact per-unit code, so a
campaign always completes with identical numbers, just slower.

Determinism contract: unit results depend only on (campaign seed, unit
key) — never on shard boundaries, completion order, or worker count —
and assembly orders runs canonically, so a 1-worker and an N-worker
run of the same spec produce byte-identical results.
:func:`verify_order_independence` asserts exactly that.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.analysis.serialize import run_from_dict
from repro.backends import resolve
from repro.env.environment import EnvironmentKind
from repro.env.runner import TestRun
from repro.env.tuning import TuningResult
from repro.campaign.journal import CampaignJournal, JournalRecord
from repro.campaign.metrics import CampaignMetrics
from repro.campaign.spec import CampaignError, CampaignSpec, WorkUnit
from repro.obs.health import HealthMonitor
from repro.store import ResultStore, unit_digests
from repro.campaign.worker import (
    FaultPlan,
    ShardResult,
    UnitOutcome,
    build_state,
    drain_unit_metrics,
    execute_shard,
    execute_unit,
    initialize_worker,
)

Log = Callable[[str], None]


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs of the sharded executor."""

    #: Worker processes; ``None`` means ``os.cpu_count()``.
    workers: Optional[int] = None
    #: Units per pool task; amortises dispatch over sub-ms units.
    shard_size: int = 64
    #: Soft per-unit deadline enforced inside the worker (seconds).
    unit_timeout: Optional[float] = 30.0
    #: Retries per unit before the failure becomes permanent.
    max_retries: int = 2
    #: Base of the exponential retry backoff (seconds).
    retry_backoff: float = 0.05
    #: Emit a progress line at most this often (seconds); None = off.
    progress_interval: Optional[float] = None
    #: Testing hook: deterministic transient-failure injection.
    fault_plan: Optional[FaultPlan] = None
    #: Skip the pool entirely (also used as the degradation target).
    force_serial: bool = False

    def effective_workers(self) -> int:
        if self.workers is not None:
            if self.workers < 1:
                raise CampaignError("workers must be >= 1")
            return self.workers
        return max(1, os.cpu_count() or 1)


@dataclass
class CampaignOutcome:
    """Everything a finished campaign produced."""

    spec: CampaignSpec
    results: Dict[EnvironmentKind, TuningResult]
    metrics: CampaignMetrics
    failed: List[Tuple[int, str]] = field(default_factory=list)
    #: Live health summary (stragglers, mid-run kill drift) from the
    #: scheduler's :class:`~repro.obs.health.HealthMonitor`.
    health: Optional[Dict[str, object]] = None

    @property
    def complete(self) -> bool:
        return not self.failed

    def report(self) -> str:
        return self.metrics.report()


@dataclass
class _Completed:
    unit: WorkUnit
    run: TestRun
    attempts: int


class CampaignScheduler:
    """Drives one campaign from spec to assembled results."""

    def __init__(
        self,
        spec: CampaignSpec,
        journal: Optional[CampaignJournal] = None,
        config: Optional[ExecutorConfig] = None,
        log: Optional[Log] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.spec = spec
        self.journal = journal
        self.config = config or ExecutorConfig()
        self.log = log or (lambda message: None)
        # Always-on live monitoring: stragglers adapt to the grid's
        # own timing distribution, and kill-drift activates when the
        # caller wires an expected rate (normally the ledger's
        # baseline window for this fingerprint).
        self.health = health or HealthMonitor()
        self.metrics = CampaignMetrics()
        self._completed: Dict[int, _Completed] = {}
        self._attempts: Dict[int, int] = {}
        self._failed: Dict[int, str] = {}
        self._last_progress = 0.0
        self._store: Optional[ResultStore] = None
        self._digests: Dict[int, str] = {}
        backend_class = resolve(spec.backend)
        self._backend_name = backend_class.name
        self._backend_version = backend_class.version

    # -- public ------------------------------------------------------------

    def run(self) -> CampaignOutcome:
        units = self.spec.units()
        self.metrics.total_units = len(units)
        rec = obs.recorder()
        if (
            self.spec.store_path is not None
            and self.spec.store_policy != "off"
        ):
            self._store = ResultStore(self.spec.store_path)
            self._digests = unit_digests(self.spec)
        with rec.span(
            "campaign.run", campaign=self.spec.name, units=len(units)
        ):
            # One writer per journal: a concurrent resume of the same
            # journal would double-execute units and interleave
            # appends, so the second scheduler is refused up front.
            if self.journal is not None:
                self.journal.acquire_lock()
            try:
                pending = self._load_checkpoint(units)
                if (
                    self._store is not None
                    and self.spec.store_policy == "reuse"
                    and pending
                ):
                    pending = self._load_store(units, pending)
                if not pending:
                    self.log(
                        f"[campaign] {self.spec.name}: nothing to do "
                        f"({len(units)} units already journaled)"
                    )
                else:
                    self.log(
                        f"[campaign] {self.spec.name}: {len(pending)} of "
                        f"{len(units)} units pending"
                    )
                    if (
                        self.config.force_serial
                        or self.config.effective_workers() == 1
                    ):
                        self.metrics.serial_fallback = (
                            self.config.force_serial
                        )
                        if self.config.force_serial:
                            rec.event(
                                "campaign.serial_fallback",
                                campaign=self.spec.name,
                                reason="forced",
                            )
                        self._run_serial(units, pending)
                    else:
                        self._run_pool(units, pending)
            finally:
                if self.journal is not None:
                    self.journal.close()
                    self.journal.release_lock()
        if self._store is not None:
            self.metrics.absorb_store_events(self._store.drain_events())
        self.metrics.finish()
        # Fold campaign telemetry into the process recorder so the
        # exported artifacts carry the repro_campaign_* families too.
        # observe_unit only ever writes metrics.registry, so this is
        # the single source — no double counting.
        if rec.enabled:
            rec.registry.merge(self.metrics.registry.snapshot())
        outcome = CampaignOutcome(
            spec=self.spec,
            results=self._assemble(),
            metrics=self.metrics,
            failed=sorted(self._failed.items()),
            health=self.health.summary(),
        )
        if outcome.failed:
            raise CampaignFailure(outcome)
        return outcome

    # -- checkpoint --------------------------------------------------------

    def _load_checkpoint(self, units: List[WorkUnit]) -> List[int]:
        done_keys = set()
        if self.journal is not None:
            by_key = {unit.key: unit for unit in units}
            for record in self.journal.load_records():
                unit = by_key.get(record.key)
                if unit is None or unit.index in self._completed:
                    continue  # stale or duplicated record: ignore
                self._completed[unit.index] = _Completed(
                    unit=unit, run=record.run, attempts=record.attempts
                )
                done_keys.add(record.key)
        self.metrics.resumed_units = len(self._completed)
        return [
            unit.index for unit in units if unit.key not in done_keys
        ]

    def _load_store(
        self, units: List[WorkUnit], pending: List[int]
    ) -> List[int]:
        """Partition pending units into store-cached vs to-execute.

        Every hit is journaled with ``attempts=0`` — the store-loaded
        marker — so kill+resume, ``campaign status``, and the service's
        journal-based recovery see a store-warmed campaign exactly like
        an executed one.  A corrupted or missing object is a counted
        miss, never an error: the unit simply executes.
        """
        assert self._store is not None
        still_pending: List[int] = []
        for index in pending:
            cached = self._store.get(self._digests[index])
            if cached is None:
                still_pending.append(index)
                continue
            _, run = cached
            unit = units[index]
            self._completed[index] = _Completed(
                unit=unit, run=run, attempts=0
            )
            if self.journal is not None:
                self.journal.append(unit, run, 0.0, 0)
        self.metrics.store_units = len(pending) - len(still_pending)
        if self.metrics.store_units:
            self.log(
                f"[campaign] {self.spec.name}: "
                f"{self.metrics.store_units} of {len(pending)} pending "
                f"units loaded from the result store"
            )
        return still_pending

    # -- execution paths ---------------------------------------------------

    def _shards(self, indices: List[int]) -> List[List[int]]:
        size = max(1, self.config.shard_size)
        return [
            indices[start:start + size]
            for start in range(0, len(indices), size)
        ]

    def _run_serial(
        self, units: List[WorkUnit], pending: List[int]
    ) -> None:
        state = build_state(self.spec, self.config.fault_plan)
        queue = list(pending)
        while queue:
            index = queue.pop(0)
            outcome = execute_unit(
                state, index, self.config.unit_timeout
            )
            # Serial execution shares the worker module's in-process
            # registry; drain after every unit so progress lines see
            # live totals.
            self.metrics.merge_worker_snapshot(drain_unit_metrics())
            retry = self._absorb(units, outcome)
            if retry is not None:
                self._backoff(retry)
                queue.append(retry)
            self._progress()
        obs.publish_cache_metrics()

    def _run_pool(
        self, units: List[WorkUnit], pending: List[int]
    ) -> None:
        workers = self.config.effective_workers()
        fault_payload = (
            self.config.fault_plan.to_payload()
            if self.config.fault_plan is not None
            else None
        )
        rec = obs.recorder()
        try:
            executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=initialize_worker,
                initargs=(
                    self.spec.to_dict(),
                    fault_payload,
                    rec.config_payload(),
                ),
            )
        except Exception as error:  # pool cannot start: degrade
            self.log(
                f"[campaign] worker pool unavailable ({error}); "
                f"degrading to serial execution"
            )
            rec.event(
                "campaign.pool_degraded",
                campaign=self.spec.name,
                stage="startup",
                error=str(error),
            )
            self.metrics.serial_fallback = True
            self._run_serial(units, pending)
            return
        try:
            with executor:
                queue = list(pending)
                while queue:
                    retries: List[int] = []
                    shards = self._shards(queue)
                    self.metrics.shards += len(shards)
                    futures = [
                        executor.submit(
                            execute_shard,
                            shard,
                            self.config.unit_timeout,
                        )
                        for shard in shards
                    ]
                    for future, shard in zip(futures, shards):
                        watchdog = self._watchdog_seconds(len(shard))
                        result: ShardResult = future.result(
                            timeout=watchdog
                        )
                        self.metrics.merge_worker_snapshot(
                            result.metrics
                        )
                        rec.absorb(
                            result.obs,
                            extra_attrs={"worker": result.worker_id},
                        )
                        for outcome in result.outcomes:
                            retry = self._absorb(units, outcome)
                            if retry is not None:
                                retries.append(retry)
                            self._progress()
                    if retries:
                        self._backoff(retries[0])
                    queue = retries
        except Exception as error:
            # A broken pool (killed worker, unpicklable state, watchdog
            # expiry) must not lose the campaign: finish what is left
            # serially.  Everything already journaled stays done.
            self.log(
                f"[campaign] worker pool failed mid-run ({error}); "
                f"finishing remaining units serially"
            )
            rec.event(
                "campaign.pool_degraded",
                campaign=self.spec.name,
                stage="mid-run",
                error=str(error),
            )
            self.metrics.serial_fallback = True
            remaining = [
                unit.index
                for unit in units
                if unit.index not in self._completed
                and unit.index not in self._failed
            ]
            self._run_serial(units, remaining)

    def _watchdog_seconds(self, shard_len: int) -> Optional[float]:
        """Shard-level backstop above the in-worker unit deadline."""
        if self.config.unit_timeout is None:
            return None
        return self.config.unit_timeout * shard_len + 60.0

    # -- absorption / retry ------------------------------------------------

    def _absorb(
        self, units: List[WorkUnit], outcome: UnitOutcome
    ) -> Optional[int]:
        """Record one outcome; return the index iff it should retry."""
        index = outcome.index
        attempts = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempts
        if outcome.ok:
            unit = units[index]
            run = run_from_dict(outcome.run)
            self._completed[index] = _Completed(
                unit=unit, run=run, attempts=attempts
            )
            straggler = self.health.observe_unit(
                outcome.elapsed,
                worker=outcome.worker_id,
                unit=index,
            )
            if straggler is not None:
                self.log(
                    f"[campaign] health: unit {index} straggled "
                    f"({straggler['elapsed']:.3f}s > "
                    f"{straggler['threshold']:.3f}s)"
                )
            drift = self.health.observe_kills(
                run.kills,
                run.iterations * run.instances_per_iteration,
                unit=index,
            )
            if drift is not None:
                self.log(
                    f"[campaign] health: cumulative kill rate "
                    f"{drift['observed_rate']:.4%} drifted from the "
                    f"expected {drift['expected_rate']:.4%} "
                    f"(z={drift['z']:+.1f})"
                )
            if self.journal is not None:
                self.journal.append(
                    unit, run, outcome.elapsed, attempts
                )
            if self._store is not None:
                self._store.put(
                    self._digests[index],
                    unit.kind,
                    run,
                    self._backend_name,
                    self._backend_version,
                )
            # Per-unit telemetry arrived with the shard's registry
            # snapshot (or via the serial drain); nothing to record
            # per outcome here.
            return None
        rec = obs.recorder()
        if outcome.timed_out:
            rec.event(
                "campaign.unit_timeout",
                unit=index,
                worker=outcome.worker_id,
                attempt=attempts,
            )
        if attempts <= self.config.max_retries:
            self.metrics.observe_retry(
                outcome.worker_id, timed_out=outcome.timed_out
            )
            rec.event(
                "campaign.unit_retry",
                unit=index,
                worker=outcome.worker_id,
                attempt=attempts,
                timed_out=outcome.timed_out,
            )
            self.log(
                f"[campaign] unit {index} attempt {attempts} failed "
                f"({outcome.error}); retrying"
            )
            return index
        self._failed[index] = outcome.error or "unknown error"
        self.metrics.units_failed += 1
        rec.event(
            "campaign.unit_failed",
            unit=index,
            worker=outcome.worker_id,
            attempts=attempts,
            error=outcome.error or "unknown error",
        )
        self.log(
            f"[campaign] unit {index} failed permanently after "
            f"{attempts} attempts: {outcome.error}"
        )
        return None

    def _backoff(self, index: int) -> None:
        if self.config.retry_backoff <= 0:
            return
        exponent = max(0, self._attempts.get(index, 1) - 1)
        time.sleep(self.config.retry_backoff * (2.0 ** exponent))

    def _progress(self) -> None:
        interval = self.config.progress_interval
        if interval is None:
            return
        now = time.monotonic()
        if now - self._last_progress >= interval:
            self._last_progress = now
            self.log(self.metrics.progress_line())

    # -- assembly ----------------------------------------------------------

    def _assemble(self) -> Dict[EnvironmentKind, TuningResult]:
        return assemble_results(
            self.spec,
            [
                (index, completed.unit.kind, completed.run)
                for index, completed in self._completed.items()
            ],
        )


class CampaignFailure(CampaignError):
    """Units failed permanently; successes remain journaled."""

    def __init__(self, outcome: CampaignOutcome) -> None:
        self.outcome = outcome
        preview = ", ".join(
            f"#{index}: {error}" for index, error in outcome.failed[:3]
        )
        super().__init__(
            f"{len(outcome.failed)} unit(s) failed permanently "
            f"({preview}); completed units are journaled — fix and "
            f"resume"
        )


# -- top-level entry points ----------------------------------------------------


def assemble_results(
    spec: CampaignSpec,
    indexed_runs: List[Tuple[int, EnvironmentKind, TestRun]],
) -> Dict[EnvironmentKind, TuningResult]:
    """Group completed runs into per-kind results, in unit order.

    Canonical ordering is what makes assembly independent of
    completion order: the runs list matches what the serial
    ``tuning_run`` path produces for the same seed.  Shared by the
    scheduler (in-memory outcomes) and the service (journal records),
    which is why a service job's stats are bit-identical to a one-shot
    ``campaign run`` of the same spec.
    """
    by_kind: Dict[EnvironmentKind, List[Tuple[int, TestRun]]] = {}
    for index, kind, run in indexed_runs:
        by_kind.setdefault(kind, []).append((index, run))
    results: Dict[EnvironmentKind, TuningResult] = {}
    for kind in spec.kind_members:
        pairs = sorted(by_kind.get(kind, []))
        if not pairs:
            continue
        results[kind] = TuningResult(
            kind=kind,
            runs=[run for _, run in pairs],
            backend=spec.backend,
        )
    return results


def run_campaign(
    spec: CampaignSpec,
    journal_path: Optional[Union[str, Path]] = None,
    config: Optional[ExecutorConfig] = None,
    log: Optional[Log] = None,
    health: Optional[HealthMonitor] = None,
) -> CampaignOutcome:
    """Run (or resume) a campaign; journaling is on iff a path is given."""
    journal = (
        CampaignJournal.create(journal_path, spec)
        if journal_path is not None
        else None
    )
    return CampaignScheduler(spec, journal, config, log, health).run()


def resume_campaign(
    journal_path: Union[str, Path],
    config: Optional[ExecutorConfig] = None,
    log: Optional[Log] = None,
    store_path: Optional[str] = None,
    store_policy: Optional[str] = None,
    health: Optional[HealthMonitor] = None,
) -> CampaignOutcome:
    """Continue a journaled campaign using the spec in its header.

    ``store_path`` / ``store_policy`` override the header's store
    knobs for this resume only.  That is always safe: both are
    execution fields excluded from the grid fingerprint, so attaching
    a store to (or detaching one from) an old journal never changes
    which campaign it is.
    """
    journal = CampaignJournal(Path(journal_path))
    spec = journal.load_spec()
    overrides: Dict[str, Optional[str]] = {}
    if store_path is not None:
        overrides["store_path"] = store_path
    if store_policy is not None:
        overrides["store_policy"] = store_policy
    if overrides:
        spec = replace(spec, **overrides)
    return CampaignScheduler(spec, journal, config, log, health).run()


@dataclass(frozen=True)
class CampaignStatus:
    """A read-only view of a journal for ``campaign status``."""

    spec: CampaignSpec
    total_units: int
    done_units: int
    per_kind: Dict[str, Tuple[int, int]]  # kind -> (done, total)
    #: Journaled units that came from the result store (``attempts==0``
    #: is the store-loaded marker) rather than execution.
    store_units: int = 0

    @property
    def complete(self) -> bool:
        return self.done_units >= self.total_units

    def describe(self) -> str:
        lines = [
            f"campaign {self.spec.name!r} "
            f"(fingerprint {self.spec.fingerprint()}): "
            f"{self.done_units}/{self.total_units} units done"
            + (" — complete" if self.complete else ""),
        ]
        for kind_name, (done, total) in self.per_kind.items():
            lines.append(f"  {kind_name:>13}: {done}/{total}")
        if self.spec.store_policy != "off" or self.store_units:
            lines.append(
                f"  result store: {self.store_units} of "
                f"{self.done_units} done units loaded from store "
                f"(policy {self.spec.store_policy}, "
                f"path {self.spec.store_path or 'unset'})"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (``campaign status --json``)."""
        return {
            "name": self.spec.name,
            "fingerprint": self.spec.fingerprint(),
            "backend": self.spec.backend,
            "total_units": self.total_units,
            "done_units": self.done_units,
            "complete": self.complete,
            "per_kind": {
                kind: {"done": done, "total": total}
                for kind, (done, total) in self.per_kind.items()
            },
            "store": {
                "path": self.spec.store_path,
                "policy": self.spec.store_policy,
                "units_from_store": self.store_units,
            },
        }


def campaign_status(
    journal_path: Union[str, Path]
) -> CampaignStatus:
    journal = CampaignJournal(Path(journal_path))
    spec = journal.load_spec()
    units = spec.units()
    records: List[JournalRecord] = journal.load_records()
    done_keys = {record.key for record in records}
    store_keys = {
        record.key for record in records if record.attempts == 0
    }
    per_kind: Dict[str, Tuple[int, int]] = {}
    for kind in spec.kind_members:
        kind_units = [u for u in units if u.kind is kind]
        done = sum(1 for u in kind_units if u.key in done_keys)
        per_kind[kind.name] = (done, len(kind_units))
    return CampaignStatus(
        spec=spec,
        total_units=len(units),
        done_units=sum(done for done, _ in per_kind.values()),
        per_kind=per_kind,
        store_units=len(store_keys),
    )


def verify_order_independence(
    spec: CampaignSpec,
    workers: int = 2,
    log: Optional[Log] = None,
) -> None:
    """Assert a 1-worker and an N-worker run agree unit-for-unit.

    This is the executable form of the determinism contract; it raises
    :class:`CampaignError` on the first diverging unit.
    """
    serial = CampaignScheduler(
        spec, config=ExecutorConfig(workers=1), log=log
    ).run()
    parallel = CampaignScheduler(
        spec, config=ExecutorConfig(workers=workers), log=log
    ).run()
    for kind, serial_result in serial.results.items():
        parallel_result = parallel.results.get(kind)
        if parallel_result is None:
            raise CampaignError(
                f"parallel run is missing kind {kind.name}"
            )
        if serial_result.runs != parallel_result.runs:
            for left, right in zip(
                serial_result.runs, parallel_result.runs
            ):
                if left != right:
                    raise CampaignError(
                        f"order-independence violated for "
                        f"{left.test_name} on {left.device_name} in "
                        f"{left.environment.name}: serial "
                        f"kills={left.kills} vs parallel "
                        f"kills={right.kills}"
                    )
            raise CampaignError(
                f"order-independence violated for kind {kind.name}"
            )
    if log is not None:
        log(
            f"[campaign] determinism verified: 1-worker and "
            f"{workers}-worker runs identical "
            f"({spec.unit_count()} units)"
        )
