"""Automated cycle enumeration and litmus/mutant synthesis (Sec. 3+).

The paper derives its 20 conformance tests and 32 mutants from three
hand-picked happens-before cycle templates; this package *generates*
the suite instead.  :func:`synthesize` enumerates cycle templates up
to a configurable size, folds isomorphic candidates under thread,
location, and value symmetry, instantiates each survivor through the
mutators of :mod:`repro.mutation`, machine-verifies every
(conformance, mutant) pair against the memory-model oracle, and
reports how much of the hand-written Table 2 suite the enumeration
recovered — the self-check that the generator subsumes the paper's
suite rather than drifting from it.

The output, a :class:`SynthesizedSuite`, is a drop-in
:class:`~repro.mutation.suite.MutationSuite`: campaigns, pruning, and
the mutation-score analysis all accept it unchanged, and it round-trips
through a versioned JSON file (:func:`save_suite` / :func:`load_suite`).

>>> from repro.synthesis import SynthesisConfig, synthesize
>>> suite = synthesize(SynthesisConfig(max_events=4))
>>> suite.stats.known_pairs_recovered  # all 20 Table 2 pairs
20
"""

from repro.synthesis.canonical import (
    pair_canonical_key,
    template_canonical_key,
    test_canonical_key,
)
from repro.synthesis.cycles import (
    ALL_EDGES,
    EDGE_COM,
    EDGE_PO,
    EDGE_PO_LOC,
    EDGE_SW,
    SynthesisConfig,
    SynthesisError,
    enumerate_templates,
)
from repro.synthesis.engine import (
    CandidateTimeout,
    mutator_instances,
    synthesize,
)
from repro.synthesis.suite import (
    SUITE_FORMAT,
    SUITE_VERSION,
    SynthesisStats,
    SynthesizedSuite,
    load_suite,
    save_suite,
    suite_from_dict,
    suite_to_dict,
)

__all__ = [
    "ALL_EDGES",
    "CandidateTimeout",
    "EDGE_COM",
    "EDGE_PO",
    "EDGE_PO_LOC",
    "EDGE_SW",
    "SUITE_FORMAT",
    "SUITE_VERSION",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisStats",
    "SynthesizedSuite",
    "enumerate_templates",
    "load_suite",
    "mutator_instances",
    "pair_canonical_key",
    "save_suite",
    "suite_from_dict",
    "suite_to_dict",
    "synthesize",
    "template_canonical_key",
    "test_canonical_key",
]
