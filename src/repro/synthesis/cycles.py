"""Enumerating happens-before cycle templates (the synthesis frontier).

The paper hand-picks three cycle shapes (Fig. 3); this module
enumerates the whole family they belong to, up to a configurable size:
simple cycles that traverse each thread's program-order segment once,
entering at its first event and leaving at its last, with cross-thread
``com`` edges closing the ring.  Two sub-families correspond to the
intra-thread edge alphabet:

* ``po-loc`` cycles (unfenced): every segment must be ordered by
  coherence alone, so all events share one location — the family of
  :data:`~repro.mutation.templates.REVERSING_PO_LOC` and
  :data:`~repro.mutation.templates.WEAKENING_PO_LOC`.
* ``po``/``sw`` cycles (fenced): segments are ordered through
  release/acquire fences and one com edge is designated the
  synchronization (forced ``rf``) edge, so locations may differ — the
  family of :data:`~repro.mutation.templates.WEAKENING_SW`.

Structural constraints enforced here are *necessary* conditions only
(com edges connect same-location endpoints, fenced templates carry at
least one fence, locations are emitted in first-use canonical order);
whether a candidate really is a disallowed cycle is decided later by
the enumeration oracle, which verifies every concretized test.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.memory_model.models import (
    REL_ACQ_SC_PER_LOCATION,
    SC_PER_LOCATION,
)
from repro.mutation.templates import AbstractEvent, ComEdge, CycleTemplate

#: Intra-thread edge alphabet understood by the enumerator.  ``com``
#: (the cross-thread communication edges) is always part of a cycle.
EDGE_PO = "po"
EDGE_PO_LOC = "po-loc"
EDGE_SW = "sw"
EDGE_COM = "com"
ALL_EDGES = frozenset({EDGE_PO, EDGE_PO_LOC, EDGE_SW, EDGE_COM})

#: Event names, assigned in (thread, slot) order like the paper's
#: ``a``..``d``.
_EVENT_NAMES = "abcdefghijklmnop"

#: Canonical location letters, assigned in first-use order.
_LOCATION_NAMES = ("x", "y", "z", "w", "v", "u")


class SynthesisError(ReproError):
    """Raised for invalid synthesis configurations."""


@dataclass(frozen=True)
class SynthesisConfig:
    """Bounds and knobs for one synthesis run.

    Attributes:
        max_events: Total memory events per cycle (the paper's Table 2
            suite lives at 4: the size bound that recovers it).
        max_threads: Testing threads per cycle (observers excluded).
        max_events_per_thread: Segment length bound.
        edges: The edge alphabet; must contain ``com`` and at least
            one of ``po-loc`` (unfenced cycles) or ``sw`` (fenced
            cycles, which also require ``po``).
        budget_seconds: Wall-clock generation budget; enumeration stops
            admitting candidates once exhausted (``None`` = unbounded).
        candidate_timeout: Per-candidate oracle deadline in seconds
            (``None`` = unbounded); candidates whose verification
            exceeds it are dropped, not fatal.
        max_pairs: Stop after admitting this many pairs (``None`` =
            unbounded).
        dedupe_known: Drop pairs structurally identical to the
            hand-written Table 2 suite from the output (the overlap is
            always *reported* either way).
    """

    max_events: int = 4
    max_threads: int = 2
    max_events_per_thread: int = 2
    edges: FrozenSet[str] = ALL_EDGES
    budget_seconds: Optional[float] = None
    candidate_timeout: Optional[float] = 10.0
    max_pairs: Optional[int] = None
    dedupe_known: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", frozenset(self.edges))
        unknown = self.edges - ALL_EDGES
        if unknown:
            raise SynthesisError(
                f"unknown edge kinds: {sorted(unknown)} "
                f"(alphabet: {sorted(ALL_EDGES)})"
            )
        if EDGE_COM not in self.edges:
            raise SynthesisError(
                "the edge alphabet needs 'com': cycles cross threads"
            )
        if EDGE_SW in self.edges and EDGE_PO not in self.edges:
            raise SynthesisError(
                "'sw' cycles synchronize po segments; add 'po' to the "
                "edge alphabet"
            )
        if not (self.unfenced_enabled or self.fenced_enabled):
            raise SynthesisError(
                "the edge alphabet admits no cycle family: add "
                "'po-loc' (unfenced) or 'sw' (fenced)"
            )
        if self.max_threads < 2:
            raise SynthesisError("cycles need at least two threads")
        if self.max_events_per_thread < 1:
            raise SynthesisError("threads need at least one event")
        if self.max_events < 2:
            raise SynthesisError("cycles need at least two events")
        if self.max_events > len(_EVENT_NAMES):
            raise SynthesisError(
                f"max_events capped at {len(_EVENT_NAMES)}"
            )

    @property
    def unfenced_enabled(self) -> bool:
        return EDGE_PO_LOC in self.edges

    @property
    def fenced_enabled(self) -> bool:
        return EDGE_SW in self.edges

    def describe(self) -> str:
        budget = (
            f"{self.budget_seconds:g}s" if self.budget_seconds else "∞"
        )
        return (
            f"≤{self.max_events} events, ≤{self.max_threads} threads, "
            f"≤{self.max_events_per_thread}/thread, "
            f"edges {{{', '.join(sorted(self.edges))}}}, budget {budget}"
        )


def _thread_shapes(config: SynthesisConfig) -> Iterator[Tuple[int, ...]]:
    """Per-thread event counts, canonically non-increasing.

    Non-increasing order prunes pure thread-permutation duplicates at
    the source; the canonical-key dedup downstream removes the rest
    (location symmetries, ring rotations of equal-count shapes).
    """
    for threads in range(2, config.max_threads + 1):
        for counts in itertools.product(
            range(config.max_events_per_thread, 0, -1), repeat=threads
        ):
            if sum(counts) > config.max_events:
                continue
            if any(
                counts[i] < counts[i + 1] for i in range(threads - 1)
            ):
                continue
            yield counts


def _ring_edges(counts: Sequence[int]) -> List[Tuple[int, int]]:
    """Com edges as ((thread, slot), (thread, slot)) pairs: last event
    of each thread to the first event of the next, closing the ring."""
    threads = len(counts)
    return [
        ((thread, counts[thread] - 1), ((thread + 1) % threads, 0))
        for thread in range(threads)
    ]


def _location_patterns(
    counts: Sequence[int], fenced: bool
) -> Iterator[Tuple[Tuple[str, ...], ...]]:
    """All canonical per-event location assignments for one shape.

    Unfenced: a single location (po-loc segments and same-location com
    edges force it).  Fenced: one free choice per same-location class
    (com-edge endpoints must share a location, so the ring's edges
    partition the slots into classes), in first-use canonical order.
    """
    if not fenced:
        yield tuple(("x",) * count for count in counts)
        return
    slots = [
        (thread, slot)
        for thread, count in enumerate(counts)
        for slot in range(count)
    ]
    # Union same-location classes over the ring's com edges; the class
    # representative is the slot seen first in traversal order, so
    # class indices below are already in first-use order.
    parent = {slot: slot for slot in slots}

    def find(slot: Tuple[int, int]) -> Tuple[int, int]:
        while parent[slot] != slot:
            parent[slot] = parent[parent[slot]]
            slot = parent[slot]
        return slot

    for source, target in _ring_edges(counts):
        root_a, root_b = find(source), find(target)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)
    class_of: List[int] = []
    class_index: dict = {}
    for slot in slots:
        root = find(slot)
        class_of.append(
            class_index.setdefault(root, len(class_index))
        )
    class_count = len(class_index)
    if class_count > len(_LOCATION_NAMES):
        return

    def extend(
        assigned: List[str], used: int
    ) -> Iterator[Tuple[Tuple[str, ...], ...]]:
        if len(assigned) == class_count:
            pattern: List[List[str]] = [[] for _ in counts]
            for (thread, _), class_id in zip(slots, class_of):
                pattern[thread].append(assigned[class_id])
            yield tuple(tuple(locs) for locs in pattern)
            return
        # First-use canonical order: reuse any seen location, or open
        # exactly the next fresh one.
        for choice in range(used + 1):
            yield from extend(
                assigned + [_LOCATION_NAMES[choice]],
                max(used, choice + 1),
            )

    yield from extend([], 0)


def _build_template(
    counts: Sequence[int],
    pattern: Sequence[Sequence[str]],
    fenced: bool,
    forced_rf_edge: int,
    serial: int,
) -> CycleTemplate:
    events: List[AbstractEvent] = []
    name_index = 0
    for thread, count in enumerate(counts):
        for slot in range(count):
            events.append(
                AbstractEvent(
                    _EVENT_NAMES[name_index],
                    thread,
                    slot,
                    pattern[thread][slot],
                )
            )
            name_index += 1
    by_position = {(e.thread, e.slot): e.name for e in events}
    com_edges = tuple(
        ComEdge(by_position[source], by_position[target])
        for source, target in _ring_edges(counts)
    )
    shape = "".join(str(count) for count in counts)
    locations = "_".join("".join(locs) for locs in pattern)
    suffix = f"F{forced_rf_edge}" if fenced else "U"
    return CycleTemplate(
        name=f"syn{serial}_{shape}_{locations}_{suffix}",
        title=f"synthesized cycle ({shape}, {locations}, {suffix})",
        events=tuple(events),
        com_edges=com_edges,
        fenced=fenced,
        model=REL_ACQ_SC_PER_LOCATION if fenced else SC_PER_LOCATION,
        forced_rf_edge=forced_rf_edge if fenced else -1,
    )


def enumerate_templates(
    config: SynthesisConfig,
) -> Iterator[CycleTemplate]:
    """Every candidate cycle template within the configured bounds.

    Raw enumeration: isomorphic candidates (thread rotations of equal
    shapes, forced-edge mirror images) are emitted and must be folded
    by :func:`repro.synthesis.canonical.template_canonical_key`.
    """
    serial = 0
    for counts in _thread_shapes(config):
        families: List[bool] = []
        if config.unfenced_enabled:
            families.append(False)
        # A fenced template needs at least one actual fence (a thread
        # with two or more events) for the sw edge to synchronize.
        if config.fenced_enabled and counts[0] >= 2:
            families.append(True)
        for fenced in families:
            for pattern in _location_patterns(counts, fenced):
                if fenced:
                    forced_choices = range(len(counts))
                else:
                    forced_choices = [-1]
                for forced in forced_choices:
                    serial += 1
                    yield _build_template(
                        counts, pattern, fenced, forced, serial
                    )
