"""Canonical forms for cycle templates and litmus tests.

Synthesis enumerates raw candidates; this module folds them under the
symmetries that leave behaviour unchanged:

* **templates** — thread permutations and location renamings (event
  names and the paper's ``a``..``d`` labels carry no meaning);
* **tests** — testing-thread permutations plus location, stored-value,
  and register renamings (values and registers are arbitrary unique
  tokens; only their equality pattern matters).

Both keys are min-lexicographic over the symmetry group, so two
candidates are isomorphic iff their keys are equal — the property the
dedup stage and the Table 2 overlap report rest on.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.litmus.instructions import (
    AtomicExchange,
    AtomicLoad,
    AtomicStore,
    Fence,
    Instruction,
)
from repro.litmus.program import LitmusTest
from repro.mutation.templates import CycleTemplate

TemplateKey = Tuple
TestKey = Tuple


def template_canonical_key(template: CycleTemplate) -> TemplateKey:
    """A key equal for exactly the isomorphic cycle templates.

    Symmetries folded: thread permutations (slot order within a thread
    is program order and must be preserved) and location renamings.
    The forced-rf edge is encoded by its position, so forcing either
    edge of a symmetric ring collapses to one key while genuinely
    different synchronization placements stay distinct.
    """
    per_thread = [
        template.thread_events(thread)
        for thread in range(template.thread_count)
    ]
    forced = (
        template.com_edges[template.forced_rf_edge]
        if 0 <= template.forced_rf_edge < len(template.com_edges)
        else None
    )
    best: Optional[TemplateKey] = None
    for permutation in itertools.permutations(range(len(per_thread))):
        # permutation[i] = original thread placed at position i.
        location_ids: Dict[str, int] = {}
        threads_encoded: List[Tuple[int, ...]] = []
        slot_of: Dict[str, Tuple[int, int]] = {}
        for position, original in enumerate(permutation):
            encoded: List[int] = []
            for slot, event in enumerate(per_thread[original]):
                location_ids.setdefault(
                    event.location, len(location_ids)
                )
                encoded.append(location_ids[event.location])
                slot_of[event.name] = (position, slot)
            threads_encoded.append(tuple(encoded))
        edges_encoded = tuple(
            sorted(
                (slot_of[edge.source], slot_of[edge.target])
                for edge in template.com_edges
            )
        )
        forced_encoded = (
            (slot_of[forced.source], slot_of[forced.target])
            if forced is not None
            else None
        )
        key: TemplateKey = (
            template.fenced,
            template.model.name,
            tuple(threads_encoded),
            edges_encoded,
            forced_encoded,
        )
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def _encode_instruction(
    instruction: Instruction,
    location_ids: Dict[str, int],
    value_ids: Dict[int, int],
    register_ids: Dict[str, int],
) -> Tuple:
    def location_id(location: object) -> int:
        return location_ids.setdefault(str(location), len(location_ids))

    def value_id(value: int) -> int:
        return value_ids.setdefault(value, len(value_ids))

    def register_id(name: str) -> int:
        return register_ids.setdefault(name, len(register_ids))

    if isinstance(instruction, AtomicExchange):
        return (
            "rmw",
            location_id(instruction.location),
            value_id(instruction.value),
            register_id(instruction.register),
        )
    if isinstance(instruction, AtomicStore):
        return (
            "st",
            location_id(instruction.location),
            value_id(instruction.value),
            -1,
        )
    if isinstance(instruction, AtomicLoad):
        return (
            "ld",
            location_id(instruction.location),
            -1,
            register_id(instruction.register),
        )
    if isinstance(instruction, Fence):
        return ("fence", -1, -1, -1)
    # Anything else (e.g. scoped control barriers) keys on its type.
    return (type(instruction).__name__, -1, -1, -1)


def test_canonical_key(test: LitmusTest) -> TestKey:
    """A key equal for exactly the isomorphic litmus tests.

    Symmetries folded: permutations of testing threads (observers keep
    their relative order after them), plus location, stored-value, and
    register renamings applied in traversal order.  The target
    behaviour is renamed with the same maps, so ``r0 == 1`` and
    ``r2 == 5`` compare equal when the underlying reads and writes
    correspond.
    """
    testing = list(test.testing_threads)
    observers = sorted(test.observer_threads)
    best: Optional[TestKey] = None
    for permutation in itertools.permutations(testing):
        order = list(permutation) + observers
        location_ids: Dict[str, int] = {}
        value_ids: Dict[int, int] = {0: 0}  # 0 is the initial value
        register_ids: Dict[str, int] = {}
        threads_encoded: List[Tuple] = []
        for thread_index in order:
            threads_encoded.append(
                tuple(
                    _encode_instruction(
                        instruction,
                        location_ids,
                        value_ids,
                        register_ids,
                    )
                    for instruction in test.threads[thread_index]
                )
            )
        target_encoded: Optional[Tuple] = None
        if test.target is not None:
            reads = tuple(
                sorted(
                    (register_ids[register], value_ids[value])
                    for register, value in test.target.reads.items()
                )
            )
            co = tuple(
                sorted(
                    (value_ids[earlier], value_ids[later])
                    for earlier, later in test.target.co
                )
            )
            target_encoded = (reads, co)
        observer_flags = tuple(
            1 if thread_index in test.observer_threads else 0
            for thread_index in order
        )
        key: TestKey = (
            test.model.name,
            tuple(threads_encoded),
            observer_flags,
            target_encoded,
        )
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def pair_canonical_key(
    conformance: LitmusTest, mutants: Sequence[LitmusTest]
) -> Tuple:
    """Key of a whole (conformance, mutants) pair: the conformance key
    plus the sorted mutant keys (mutant order carries no meaning)."""
    return (
        test_canonical_key(conformance),
        tuple(sorted(test_canonical_key(mutant) for mutant in mutants)),
    )
