"""Synthesized suites and their versioned on-disk JSON format.

A :class:`SynthesizedSuite` *is* a
:class:`~repro.mutation.suite.MutationSuite` — every consumer of the
hand-written Table 2 suite (campaigns, pruning, mutation-score
analysis, the CLI) accepts one unchanged — carrying three extra
payloads: the :class:`~repro.synthesis.cycles.SynthesisConfig` that
produced it, the :class:`SynthesisStats` of the generation run, and
the overlap with the known Table 2 pairs.

Suites serialize to a versioned JSON document whose tests are stored
in the textual litmus format (:mod:`repro.litmus.textfmt`), so a suite
file is diffable and individually inspectable.  :func:`load_suite`
optionally re-verifies every pair against the enumeration oracle —
the CI smoke job loads with ``verify=True`` so a corrupted or stale
suite file fails loudly rather than silently skewing a campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.litmus.textfmt import format_test, parse
from repro.mutation.generator import verify_test
from repro.mutation.mutators import MutationPair, MutatorKind
from repro.mutation.suite import MutationSuite
from repro.synthesis.cycles import SynthesisConfig, SynthesisError

#: Bump when the on-disk layout changes; the loader rejects unknown
#: versions instead of guessing.
SUITE_FORMAT = "repro-synthesized-suite"
SUITE_VERSION = 1


@dataclass(frozen=True)
class SynthesisStats:
    """Counters from one generation run (the ``synthesize`` summary).

    ``known_*`` fields report the Table 2 self-check: how much of the
    hand-written suite the enumeration recovered, at pair granularity
    (conformance + full mutant set isomorphic) and at individual test
    granularity.
    """

    templates_enumerated: int = 0
    templates_canonical: int = 0
    candidates_tried: int = 0
    candidates_failed: int = 0
    candidates_timed_out: int = 0
    pairs_admitted: int = 0
    duplicates_folded: int = 0
    known_pairs_recovered: int = 0
    known_pairs_total: int = 0
    known_conformance_recovered: int = 0
    known_conformance_total: int = 0
    known_mutants_recovered: int = 0
    known_mutants_total: int = 0
    budget_exhausted: bool = False
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        lines = [
            f"templates: {self.templates_enumerated} enumerated, "
            f"{self.templates_canonical} canonical",
            f"candidates: {self.candidates_tried} tried, "
            f"{self.candidates_failed} failed verification, "
            f"{self.candidates_timed_out} timed out",
            f"pairs: {self.pairs_admitted} admitted, "
            f"{self.duplicates_folded} duplicates folded",
            f"Table 2 overlap: "
            f"{self.known_pairs_recovered}/{self.known_pairs_total} pairs, "
            f"{self.known_conformance_recovered}/"
            f"{self.known_conformance_total} conformance tests, "
            f"{self.known_mutants_recovered}/{self.known_mutants_total} "
            f"mutants",
            f"elapsed: {self.elapsed_seconds:.1f}s"
            + (" (budget exhausted)" if self.budget_exhausted else ""),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "templates_enumerated": self.templates_enumerated,
            "templates_canonical": self.templates_canonical,
            "candidates_tried": self.candidates_tried,
            "candidates_failed": self.candidates_failed,
            "candidates_timed_out": self.candidates_timed_out,
            "pairs_admitted": self.pairs_admitted,
            "duplicates_folded": self.duplicates_folded,
            "known_pairs_recovered": self.known_pairs_recovered,
            "known_pairs_total": self.known_pairs_total,
            "known_conformance_recovered": self.known_conformance_recovered,
            "known_conformance_total": self.known_conformance_total,
            "known_mutants_recovered": self.known_mutants_recovered,
            "known_mutants_total": self.known_mutants_total,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SynthesisStats":
        return cls(**payload)


@dataclass(frozen=True)
class SynthesizedSuite(MutationSuite):
    """A generated suite: drop-in :class:`MutationSuite` + provenance.

    Attributes:
        config: The bounds the suite was generated under.
        stats: Generation counters, including the Table 2 overlap.
        overlap: Names of the hand-written Table 2 conformance tests
            whose whole pair (conformance + mutants) the generation
            recovered, modulo canonical renaming.
    """

    config: SynthesisConfig = SynthesisConfig()
    stats: SynthesisStats = SynthesisStats()
    overlap: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overlap", tuple(self.overlap))

    def describe(self) -> str:
        conformance, mutants = self.combined_counts()
        return (
            f"synthesized suite: {conformance} conformance tests, "
            f"{mutants} mutants ({self.config.describe()})\n"
            f"{self.stats.describe()}"
        )


def config_to_dict(config: SynthesisConfig) -> Dict[str, Any]:
    return {
        "max_events": config.max_events,
        "max_threads": config.max_threads,
        "max_events_per_thread": config.max_events_per_thread,
        "edges": sorted(config.edges),
        "budget_seconds": config.budget_seconds,
        "candidate_timeout": config.candidate_timeout,
        "max_pairs": config.max_pairs,
        "dedupe_known": config.dedupe_known,
    }


def config_from_dict(payload: Dict[str, Any]) -> SynthesisConfig:
    return SynthesisConfig(
        max_events=payload["max_events"],
        max_threads=payload["max_threads"],
        max_events_per_thread=payload["max_events_per_thread"],
        edges=frozenset(payload["edges"]),
        budget_seconds=payload["budget_seconds"],
        candidate_timeout=payload["candidate_timeout"],
        max_pairs=payload["max_pairs"],
        dedupe_known=payload["dedupe_known"],
    )


def _pair_to_dict(pair: MutationPair) -> Dict[str, Any]:
    return {
        "mutator": pair.mutator.value,
        "alias": pair.alias,
        "template": pair.template_name,
        "conformance": format_test(pair.conformance),
        "mutants": [format_test(mutant) for mutant in pair.mutants],
    }


def _pair_from_dict(
    payload: Dict[str, Any], verify: bool
) -> MutationPair:
    try:
        mutator = MutatorKind(payload["mutator"])
    except ValueError:
        raise SynthesisError(
            f"unknown mutator kind in suite file: "
            f"{payload.get('mutator')!r}"
        )
    conformance = parse(payload["conformance"])
    mutants = tuple(parse(text) for text in payload["mutants"])
    if verify:
        verify_test(conformance, expect_allowed=False)
        for mutant in mutants:
            verify_test(mutant, expect_allowed=True)
    return MutationPair(
        mutator=mutator,
        conformance=conformance,
        mutants=mutants,
        alias=payload.get("alias", ""),
        template_name=payload.get("template", ""),
    )


def suite_to_dict(suite: SynthesizedSuite) -> Dict[str, Any]:
    return {
        "format": SUITE_FORMAT,
        "version": SUITE_VERSION,
        "config": config_to_dict(suite.config),
        "stats": suite.stats.to_dict(),
        "overlap": list(suite.overlap),
        "pairs": [_pair_to_dict(pair) for pair in suite.pairs],
    }


def suite_from_dict(
    payload: Dict[str, Any], verify: bool = False
) -> SynthesizedSuite:
    if payload.get("format") != SUITE_FORMAT:
        raise SynthesisError(
            f"not a synthesized suite file (format "
            f"{payload.get('format')!r}, expected {SUITE_FORMAT!r})"
        )
    if payload.get("version") != SUITE_VERSION:
        raise SynthesisError(
            f"unsupported suite file version {payload.get('version')!r} "
            f"(this build reads version {SUITE_VERSION})"
        )
    pairs: List[MutationPair] = []
    for index, entry in enumerate(payload.get("pairs", [])):
        try:
            pairs.append(_pair_from_dict(entry, verify))
        except ReproError as error:
            raise SynthesisError(
                f"suite file pair #{index} is invalid: {error}"
            )
    return SynthesizedSuite(
        pairs=tuple(pairs),
        config=config_from_dict(payload["config"]),
        stats=SynthesisStats.from_dict(payload["stats"]),
        overlap=tuple(payload.get("overlap", ())),
    )


def save_suite(
    suite: SynthesizedSuite, path: Union[str, Path]
) -> Path:
    """Write a suite to its versioned JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(suite_to_dict(suite), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def load_suite(
    path: Union[str, Path], verify: bool = False
) -> SynthesizedSuite:
    """Read a suite back.

    Args:
        path: A file produced by :func:`save_suite`.
        verify: Re-check every pair against the enumeration oracle
            (conformance behaviour disallowed, every mutant behaviour
            allowed).  Slower; meant for CI and post-edit sanity.

    Raises:
        SynthesisError: On a wrong format marker, unknown version,
            malformed pair, or (with ``verify``) an oracle mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise SynthesisError(f"no suite file at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise SynthesisError(f"suite file {path} is not JSON: {error}")
    return suite_from_dict(payload, verify=verify)
