"""The synthesis engine: from cycle bounds to a verified suite.

Pipeline (each stage feeds the next, every number lands in
:class:`~repro.synthesis.suite.SynthesisStats`):

1. **enumerate** — :func:`repro.synthesis.cycles.enumerate_templates`
   yields every raw cycle template within the configured bounds;
2. **canonicalize** — templates equal under
   :func:`~repro.synthesis.canonical.template_canonical_key` are
   generated once;
3. **mutate** — every applicable mutator instantiation from
   :mod:`repro.mutation.mutators` is applied to each canonical
   template (each eligible reversal thread, each eligible relocation
   edge, the fence-weakening when the template is fenced);
4. **verify** — each candidate builds under a per-candidate oracle
   deadline and a global wall-clock budget; candidates that fail
   verification or time out are counted and dropped, never fatal;
5. **dedupe** — pairs equal under
   :func:`~repro.synthesis.canonical.pair_canonical_key` are admitted
   once, and pairs isomorphic to the hand-written Table 2 suite are
   reported as recovered (the key self-check: at the Table 2 size
   bound the engine must recover all 20 conformance tests and all 32
   mutants).

The result is a :class:`~repro.synthesis.suite.SynthesizedSuite` — a
drop-in :class:`~repro.mutation.suite.MutationSuite` ready for
campaigns, pruning, and mutation-score analysis.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro import obs
from repro.errors import ReproError
from repro.mutation.mutators import (
    MutationPair,
    Mutator,
    ReversingPoLocMutator,
    WeakeningPoLocMutator,
    WeakeningSwMutator,
)
from repro.mutation.suite import MutationSuite, default_suite
from repro.mutation.templates import CycleTemplate
from repro.synthesis.canonical import (
    pair_canonical_key,
    template_canonical_key,
    test_canonical_key,
)
from repro.synthesis.cycles import (
    SynthesisConfig,
    enumerate_templates,
)
from repro.synthesis.suite import SynthesisStats, SynthesizedSuite

#: Progress callback: called with human-readable one-liners.
LogFn = Callable[[str], None]

#: Obs metric families of the synthesis pipeline.
PHASE_SECONDS_METRIC = "repro_synthesis_phase_seconds_total"
CANDIDATE_SECONDS_METRIC = "repro_synthesis_candidate_seconds"
CANDIDATES_METRIC = "repro_synthesis_candidates_total"


def _timed_iter(iterable, phase_seconds: Dict[str, float], phase: str):
    """Yield from ``iterable``, charging producer time to a phase.

    Generators do their work inside ``next()``; this is how the lazily
    produced enumeration stream gets its own timing bucket without
    materialising it.
    """
    iterator = iter(iterable)
    while True:
        started = time.perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            phase_seconds[phase] += time.perf_counter() - started
            return
        phase_seconds[phase] += time.perf_counter() - started
        yield item


class CandidateTimeout(ReproError):
    """A candidate exceeded the per-candidate oracle deadline."""


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """A soft per-candidate deadline via SIGALRM where available.

    Mirrors the campaign worker's per-unit deadline: on platforms
    without SIGALRM (or off the main thread) the deadline degrades to
    "no timeout" and only the global budget bounds the run.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
    )
    if usable:
        try:
            previous = signal.signal(
                signal.SIGALRM,
                lambda signum, frame: (_ for _ in ()).throw(
                    CandidateTimeout(
                        f"candidate exceeded {seconds:g}s oracle deadline"
                    )
                ),
            )
        except ValueError:  # not the main thread
            usable = False
    if not usable:
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def mutator_instances(template: CycleTemplate) -> List[Mutator]:
    """Every applicable mutator instantiation for one template.

    The paper picks one disruptor per hand-written template; on an
    arbitrary synthesized template each structural opportunity gets its
    own instance (reversing every eligible thread, relocating every
    eligible com edge), with a ``name_tag`` so generated test names
    stay unique per (template, disruptor).
    """
    instances: List[Mutator] = []
    for thread in ReversingPoLocMutator.eligible_threads(template):
        instances.append(
            ReversingPoLocMutator(
                template, name_tag=f"r{thread}", reversed_thread=thread
            )
        )
    for edge in WeakeningPoLocMutator.eligible_edges(template):
        instances.append(
            WeakeningPoLocMutator(
                template, name_tag=f"e{edge}", relocated_edge=edge
            )
        )
    if WeakeningSwMutator.applicable(template):
        instances.append(WeakeningSwMutator(template, name_tag="sw"))
    return instances


class _KnownSuiteIndex:
    """Canonical keys of a reference (hand-written) suite.

    Keys map to the *names* sharing them (distinct reference tests may
    be isomorphic — e.g. the two single-fence drops of the SB pair —
    and recovering the shape recovers all of them), so recovery counts
    are in reference-test units: 20 conformance tests, 32 mutants.
    """

    def __init__(self, reference: MutationSuite) -> None:
        self.pair_names: Dict[Tuple, str] = {}
        self.conformance_names: Dict[Tuple, List[str]] = {}
        self.mutant_names: Dict[Tuple, List[str]] = {}
        for pair in reference.pairs:
            key = pair_canonical_key(pair.conformance, pair.mutants)
            self.pair_names[key] = pair.conformance.name
            self.conformance_names.setdefault(
                test_canonical_key(pair.conformance), []
            ).append(pair.conformance.name)
            for mutant in pair.mutants:
                self.mutant_names.setdefault(
                    test_canonical_key(mutant), []
                ).append(mutant.name)

    @staticmethod
    def total(names: Dict[Tuple, List[str]]) -> int:
        return sum(len(group) for group in names.values())


def synthesize(
    config: Optional[SynthesisConfig] = None,
    log: Optional[LogFn] = None,
    reference: Optional[MutationSuite] = None,
) -> SynthesizedSuite:
    """Run the full pipeline and return the verified suite.

    Args:
        config: Bounds and knobs; defaults to the Table 2 size bound.
        log: Optional progress sink (one line per canonical template
            plus a final summary); ``None`` is silent.
        reference: Suite to compute the overlap report against;
            defaults to the hand-written Table 2 suite.

    Deterministic for a given config: enumeration order, candidate
    order, and dedup tie-breaks are all fixed (only the budget and the
    per-candidate deadline are wall-clock dependent).
    """
    config = config or SynthesisConfig()
    emit = log or (lambda message: None)
    rec = obs.recorder()
    started = time.monotonic()
    known = _KnownSuiteIndex(
        reference if reference is not None else default_suite()
    )

    phase_seconds = {
        "enumerate": 0.0,
        "canonicalize": 0.0,
        "mutate": 0.0,
        "verify": 0.0,
        "dedupe": 0.0,
    }
    stats = {
        "templates_enumerated": 0,
        "templates_canonical": 0,
        "candidates_tried": 0,
        "candidates_failed": 0,
        "candidates_timed_out": 0,
        "pairs_admitted": 0,
        "duplicates_folded": 0,
        "budget_exhausted": False,
    }
    seen_templates: Set[Tuple] = set()
    seen_pairs: Set[Tuple] = set()
    recovered_pairs: Dict[Tuple, str] = {}
    recovered_conformance: Set[Tuple] = set()
    recovered_mutants: Set[Tuple] = set()
    admitted: List[MutationPair] = []

    def out_of_budget() -> bool:
        return (
            config.budget_seconds is not None
            and time.monotonic() - started >= config.budget_seconds
        )

    def at_pair_cap() -> bool:
        return (
            config.max_pairs is not None
            and len(admitted) >= config.max_pairs
        )

    emit(f"synthesizing: {config.describe()}")
    stop = False
    run_span = rec.span(
        "synthesis.run", bound=config.describe()
    )
    with run_span:
        for template in _timed_iter(
            enumerate_templates(config), phase_seconds, "enumerate"
        ):
            if stop or out_of_budget() or at_pair_cap():
                stats["budget_exhausted"] = out_of_budget()
                break
            stats["templates_enumerated"] += 1
            mark = time.perf_counter()
            template_key = template_canonical_key(template)
            phase_seconds["canonicalize"] += time.perf_counter() - mark
            if template_key in seen_templates:
                continue
            seen_templates.add(template_key)
            stats["templates_canonical"] += 1
            template_admitted = 0
            template_timed_out = 0
            mark = time.perf_counter()
            mutators = mutator_instances(template)
            phase_seconds["mutate"] += time.perf_counter() - mark
            for mutator in mutators:
                for label, build in _timed_iter(
                    mutator.candidates(), phase_seconds, "mutate"
                ):
                    if out_of_budget() or at_pair_cap():
                        stats["budget_exhausted"] = out_of_budget()
                        stop = True
                        break
                    stats["candidates_tried"] += 1
                    mark = time.perf_counter()
                    try:
                        with _deadline(config.candidate_timeout):
                            pair = build()
                    except CandidateTimeout:
                        phase_seconds["verify"] += (
                            time.perf_counter() - mark
                        )
                        stats["candidates_timed_out"] += 1
                        template_timed_out += 1
                        # A deadline hit is a named, counted event —
                        # never a silent drop.
                        rec.event(
                            "synthesis.candidate_deadline",
                            template=template.name,
                            candidate=label,
                            deadline_seconds=config.candidate_timeout,
                        )
                        rec.counter_inc(
                            CANDIDATES_METRIC, 1,
                            {"outcome": "timed_out"},
                        )
                        continue
                    except ReproError:
                        # Structurally plausible but semantically not a
                        # (disallowed, allowed) pair under the oracle.
                        phase_seconds["verify"] += (
                            time.perf_counter() - mark
                        )
                        stats["candidates_failed"] += 1
                        rec.counter_inc(
                            CANDIDATES_METRIC, 1,
                            {"outcome": "failed"},
                        )
                        continue
                    candidate_elapsed = time.perf_counter() - mark
                    phase_seconds["verify"] += candidate_elapsed
                    rec.observe(
                        CANDIDATE_SECONDS_METRIC, candidate_elapsed
                    )
                    if pair is None:
                        rec.counter_inc(
                            CANDIDATES_METRIC, 1,
                            {"outcome": "not_a_pair"},
                        )
                        continue
                    mark = time.perf_counter()
                    pair_key = pair_canonical_key(
                        pair.conformance, pair.mutants
                    )
                    if pair_key in seen_pairs:
                        phase_seconds["dedupe"] += (
                            time.perf_counter() - mark
                        )
                        stats["duplicates_folded"] += 1
                        rec.counter_inc(
                            CANDIDATES_METRIC, 1,
                            {"outcome": "duplicate"},
                        )
                        continue
                    seen_pairs.add(pair_key)
                    conformance_key = test_canonical_key(
                        pair.conformance
                    )
                    if conformance_key in known.conformance_names:
                        recovered_conformance.add(conformance_key)
                    for mutant in pair.mutants:
                        mutant_key = test_canonical_key(mutant)
                        if mutant_key in known.mutant_names:
                            recovered_mutants.add(mutant_key)
                    known_name = known.pair_names.get(pair_key)
                    phase_seconds["dedupe"] += (
                        time.perf_counter() - mark
                    )
                    if known_name is not None:
                        recovered_pairs[pair_key] = known_name
                        if config.dedupe_known:
                            rec.counter_inc(
                                CANDIDATES_METRIC, 1,
                                {"outcome": "known"},
                            )
                            continue
                    admitted.append(pair)
                    template_admitted += 1
                    rec.counter_inc(
                        CANDIDATES_METRIC, 1, {"outcome": "admitted"}
                    )
                if stop:
                    break
            timed_out_note = (
                f", {template_timed_out} deadline hit(s)"
                if template_timed_out
                else ""
            )
            emit(
                f"  {template.name}: {template_admitted} pair(s) "
                f"admitted ({stats['candidates_tried']} candidates "
                f"tried so far{timed_out_note})"
            )

    if stats["budget_exhausted"]:
        rec.event(
            "synthesis.budget_exhausted",
            budget_seconds=config.budget_seconds,
            candidates_tried=stats["candidates_tried"],
        )
    if rec.enabled:
        for phase, seconds in phase_seconds.items():
            rec.counter_inc(
                PHASE_SECONDS_METRIC, seconds, {"phase": phase}
            )
        obs.publish_cache_metrics()

    elapsed = time.monotonic() - started
    suite = SynthesizedSuite(
        pairs=tuple(admitted),
        config=config,
        stats=SynthesisStats(
            templates_enumerated=stats["templates_enumerated"],
            templates_canonical=stats["templates_canonical"],
            candidates_tried=stats["candidates_tried"],
            candidates_failed=stats["candidates_failed"],
            candidates_timed_out=stats["candidates_timed_out"],
            pairs_admitted=len(admitted),
            duplicates_folded=stats["duplicates_folded"],
            known_pairs_recovered=len(recovered_pairs),
            known_pairs_total=len(known.pair_names),
            known_conformance_recovered=sum(
                len(known.conformance_names[key])
                for key in recovered_conformance
            ),
            known_conformance_total=known.total(
                known.conformance_names
            ),
            known_mutants_recovered=sum(
                len(known.mutant_names[key])
                for key in recovered_mutants
            ),
            known_mutants_total=known.total(known.mutant_names),
            budget_exhausted=bool(stats["budget_exhausted"]),
            elapsed_seconds=elapsed,
        ),
        overlap=tuple(sorted(recovered_pairs.values())),
    )
    emit(suite.stats.describe())
    return suite
