"""Exception hierarchy for the MC Mutants reproduction.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing interpreter-level bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class MalformedExecutionError(ReproError):
    """An execution's events or relations violate a structural invariant.

    Examples: a ``reads-from`` edge whose source is not a write, a
    coherence order that is not total over same-location writes, or a
    relation referencing an event that is not part of the execution.
    """


class MalformedProgramError(ReproError):
    """A litmus program violates a structural invariant.

    Examples: two writes storing the same value to one location (values
    must be unique so outcomes identify the writer), or a register read
    by the postcondition that no instruction defines.
    """


class MutationError(ReproError):
    """A mutator was asked to operate on an incompatible template."""


class WitnessError(ReproError):
    """A candidate execution cannot be compiled to an observable witness.

    Raised when a required coherence constraint has no observation
    channel (read value, final memory value, or observer read) that can
    certify it; the caller should add an observer thread and retry.
    """


class EnvironmentError_(ReproError):
    """A testing-environment configuration is invalid.

    The trailing underscore avoids shadowing the ``OSError`` alias
    ``EnvironmentError`` built into Python.
    """


class DeviceError(ReproError):
    """A simulated device was configured or used incorrectly."""


class AnalysisError(ReproError):
    """Statistics or reporting was requested on unusable data."""
