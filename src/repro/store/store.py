"""The content-addressed result store.

Layout (all inside one root directory)::

    <root>/manifest.json          store format + key schema
    <root>/objects/ab/<digest>.json   one completed unit per object

Objects are keyed by :func:`repro.env.runner.result_digest` — a
SHA-256 over (key schema, backend name, backend version, canonical
result key) — and sharded by the first two hex digits so no directory
grows beyond ~1/256 of the store.  Every object embeds its digest, its
backend identity, the serialized run, and a content fingerprint over
the run payload, so :meth:`ResultStore.verify` can detect tampering or
bit rot without recomputing any results.

Writes are atomic: the object is serialized to a temporary file in the
same directory and ``os.replace``d into place.  Concurrent writers —
two campaigns, or a campaign and the service — racing on the same
digest therefore leave exactly one valid object (last write wins;
both wrote the same bytes anyway, since the digest pins the content).
Reads treat anything unparsable or inconsistent as a miss and count
it, never as an error: a store can only make campaigns faster, never
fail them.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.serialize import (
    tagged_run_from_dict,
    tagged_run_to_dict,
)
from repro.env.environment import EnvironmentKind
from repro.env.runner import RESULT_KEY_SCHEMA, TestRun
from repro.errors import ReproError
from repro.store.keys import content_fingerprint

#: Bump when the on-disk layout or object schema changes shape.
STORE_FORMAT = 1

MANIFEST_FILENAME = "manifest.json"
OBJECTS_DIRNAME = "objects"

#: The campaign-visible store policies (campaign spec v4).
STORE_POLICIES = ("off", "record", "reuse")


class StoreError(ReproError):
    """Raised for malformed stores or store misuse — never for a miss."""


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time inventory of one store."""

    path: str
    format: int
    key_schema: int
    objects: int
    bytes: int

    def describe(self) -> str:
        return (
            f"result store at {self.path}: {self.objects} object(s), "
            f"{self.bytes:,} bytes "
            f"(format {self.format}, key schema {self.key_schema})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "format": self.format,
            "key_schema": self.key_schema,
            "objects": self.objects,
            "bytes": self.bytes,
        }


class ResultStore:
    """An on-disk, content-addressed store of completed unit results.

    Opening a path creates the store (manifest + objects directory) if
    it does not exist, and refuses a store written under a different
    format or key schema — silently reading results addressed under
    different semantics would be corruption, not compatibility.

    The store keeps per-instance event counters (``(op, outcome)`` →
    count); :meth:`drain_events` hands the deltas to whoever publishes
    them as ``repro_store_events_total`` (the campaign metrics layer
    and the service both do).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.events: Dict[Tuple[str, str], int] = {}
        self._ensure_layout()

    # -- layout ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_FILENAME

    @property
    def objects_dir(self) -> Path:
        return self.path / OBJECTS_DIRNAME

    def _ensure_layout(self) -> None:
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            manifest = self._load_manifest()
            if manifest.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{self.path}: store format "
                    f"{manifest.get('format')!r} is not the supported "
                    f"format {STORE_FORMAT}"
                )
            if manifest.get("key_schema") != RESULT_KEY_SCHEMA:
                raise StoreError(
                    f"{self.path}: store key schema "
                    f"{manifest.get('key_schema')!r} does not match "
                    f"this build's schema {RESULT_KEY_SCHEMA}; results "
                    f"are addressed under different semantics — use a "
                    f"fresh store"
                )
            return
        self._write_atomic(
            self.manifest_path,
            json.dumps(
                {
                    "format": STORE_FORMAT,
                    "key_schema": RESULT_KEY_SCHEMA,
                    "created_utc": time.time(),
                },
                sort_keys=True,
            )
            + "\n",
        )

    def _load_manifest(self) -> Dict[str, Any]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"{self.path}: unreadable store manifest: {error}"
            )

    def _object_path(self, digest: str) -> Path:
        if len(digest) < 3:
            raise StoreError(f"malformed store digest: {digest!r}")
        return self.objects_dir / digest[:2] / f"{digest}.json"

    def _write_atomic(self, target: Path, text: str) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _count(self, op: str, outcome: str) -> None:
        key = (op, outcome)
        self.events[key] = self.events.get(key, 0) + 1

    def drain_events(self) -> Dict[Tuple[str, str], int]:
        """Snapshot-and-reset the per-instance event counters."""
        drained = self.events
        self.events = {}
        return drained

    # -- the object API ----------------------------------------------------

    def contains(self, digest: str) -> bool:
        return self._object_path(digest).exists()

    def put(
        self,
        digest: str,
        kind: EnvironmentKind,
        run: TestRun,
        backend_name: str,
        backend_version: int,
    ) -> bool:
        """Record one completed unit; returns True iff written.

        An already-present object is skipped (the digest pins the
        content, so rewriting it could only produce identical bytes).
        """
        target = self._object_path(digest)
        if target.exists():
            self._count("put", "skip")
            return False
        run_payload = tagged_run_to_dict(kind, run)
        payload = {
            "schema": STORE_FORMAT,
            "digest": digest,
            "backend": backend_name,
            "backend_version": backend_version,
            "run": run_payload,
            "fingerprint": content_fingerprint(run_payload),
        }
        self._write_atomic(
            target, json.dumps(payload, sort_keys=True) + "\n"
        )
        self._count("put", "write")
        return True

    def get(
        self, digest: str
    ) -> Optional[Tuple[EnvironmentKind, TestRun]]:
        """The stored (kind, run) for a digest, or ``None``.

        A missing, truncated, corrupted, or inconsistent object is a
        counted miss — a store never fails the campaign reading it.
        """
        target = self._object_path(digest)
        try:
            payload = json.loads(target.read_text())
        except FileNotFoundError:
            self._count("get", "miss")
            return None
        except (OSError, json.JSONDecodeError):
            self._count("get", "corrupt")
            self._unlink(target)  # evict so a later put can heal it
            return None
        result = self._validate_object(payload, digest)
        if result is None:
            self._count("get", "corrupt")
            self._unlink(target)
            return None
        self._count("get", "hit")
        return result

    @staticmethod
    def _validate_object(
        payload: Any, digest: Optional[str] = None
    ) -> Optional[Tuple[EnvironmentKind, TestRun]]:
        """Decode one object payload, or ``None`` when inconsistent."""
        if not isinstance(payload, dict):
            return None
        if digest is not None and payload.get("digest") != digest:
            return None
        run_payload = payload.get("run")
        if not isinstance(run_payload, dict):
            return None
        if payload.get("fingerprint") != content_fingerprint(run_payload):
            return None
        try:
            return tagged_run_from_dict(run_payload)
        except ReproError:
            return None

    # -- maintenance -------------------------------------------------------

    def _iter_objects(self) -> Iterator[Path]:
        if not self.objects_dir.exists():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path

    def stats(self) -> StoreStats:
        manifest = self._load_manifest()
        objects = 0
        total_bytes = 0
        for path in self._iter_objects():
            objects += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return StoreStats(
            path=str(self.path),
            format=manifest.get("format", STORE_FORMAT),
            key_schema=manifest.get("key_schema", RESULT_KEY_SCHEMA),
            objects=objects,
            bytes=total_bytes,
        )

    def verify(self) -> Tuple[int, List[str]]:
        """Check every object's digest and content fingerprint.

        Returns ``(checked, bad)`` where ``bad`` lists the offending
        object paths — tampered, truncated, or misfiled objects.
        Nothing is deleted; that is :meth:`gc`'s job, explicitly.
        """
        checked = 0
        bad: List[str] = []
        for path in self._iter_objects():
            checked += 1
            expected = path.stem
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                bad.append(str(path))
                continue
            if self._validate_object(payload, expected) is None:
                bad.append(str(path))
        return checked, bad

    def gc(
        self,
        max_objects: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> int:
        """Evict objects beyond the given bounds; returns the count.

        ``max_age_seconds`` drops objects whose mtime is older than
        the cutoff; ``max_objects`` then drops the oldest objects
        beyond the cap.  Invalid objects (those :meth:`verify` would
        flag) are always dropped first — they can only ever miss.
        """
        inventory: List[Tuple[float, Path]] = []
        removed = 0
        now = time.time()
        for path in self._iter_objects():
            try:
                payload = json.loads(path.read_text())
                valid = (
                    self._validate_object(payload, path.stem) is not None
                )
            except (OSError, json.JSONDecodeError):
                valid = False
            if not valid:
                removed += self._unlink(path)
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if (
                max_age_seconds is not None
                and now - mtime > max_age_seconds
            ):
                removed += self._unlink(path)
                continue
            inventory.append((mtime, path))
        if max_objects is not None and len(inventory) > max_objects:
            inventory.sort()  # oldest first
            excess = len(inventory) - max_objects
            for _, path in inventory[:excess]:
                removed += self._unlink(path)
        return removed

    @staticmethod
    def _unlink(path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0


def open_store(path: Union[str, Path]) -> ResultStore:
    """Open (creating if needed) the result store at ``path``."""
    return ResultStore(path)
