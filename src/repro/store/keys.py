"""Computing store addresses for campaign work units.

The address of one unit result is
:func:`repro.env.runner.result_digest` over the canonical
:func:`repro.env.runner.result_key` — the same tuple the vectorized
backend memoizes on in-process, extended with the backend's name and
behaviour version.  This module materialises a campaign spec exactly
the way the worker does (same device factory, same test resolution,
same environment regeneration, same iteration-count rule) and maps
every work unit to its digest, so the scheduler, the service, and the
store itself can never disagree about what a unit is called.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict

from repro.env.runner import result_digest, result_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.spec import CampaignSpec


def content_fingerprint(payload: Dict[str, Any]) -> str:
    """A short integrity hash over one JSON-serializable payload."""
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def unit_digests(spec: "CampaignSpec") -> Dict[int, str]:
    """Every work unit's store digest, keyed by unit index.

    Materialises the spec through the worker's own
    :func:`~repro.campaign.worker.build_state` — the one code path
    that resolves test names (synthesized suite first), constructs
    devices (including ``buggy`` bug injection), regenerates
    environments, and instantiates the backend — so a digest reflects
    precisely what executing the unit would compute.

    The iteration count folded into each key follows the runner's
    resolution rule: the spec's ``iterations_override`` when set, else
    the environment kind's default budget.
    """
    # Imported lazily: repro.campaign imports repro.store (the
    # scheduler partitions against it), so the module-level direction
    # must stay store → env only.
    from repro.campaign.worker import build_state

    state = build_state(spec)
    backend = state.runner.backend
    digests: Dict[int, str] = {}
    for unit in state.units:
        environment = state.environments[(unit.kind.name, unit.env_key)]
        iterations = (
            spec.iterations_override
            if spec.iterations_override is not None
            else environment.iterations()
        )
        key = result_key(
            state.tests[unit.test_name],
            state.devices[unit.device_name],
            environment,
            seed=spec.seed,
            iterations=iterations,
        )
        digests[unit.index] = result_digest(
            backend.name, backend.version, key
        )
    return digests
