"""repro.store — the persistent, content-addressed result store.

Layer 9 of the architecture: where the in-process memo caches
(:mod:`repro.backends.vectorized`, the oracle cache) die with their
worker, this store persists completed unit results on disk, shared
across workers, across runs, and across the service daemon.  A
campaign run with ``store_policy="reuse"`` partitions its grid into
cached-vs-pending before dispatch; a warm re-run of an unchanged spec
executes zero units and assembles bit-identical stats straight from
the store, and a delta campaign (one device swapped, a few tests
added) executes only the units whose addresses changed.

Addresses are :func:`repro.env.runner.result_digest` over the
canonical :func:`repro.env.runner.result_key` — test structure ×
device configuration × environment × seed × iterations — plus the
backend's name and behaviour version, so nothing short of "this exact
computation" ever hits.

>>> from repro.store import ResultStore
>>> store = ResultStore("store")                    # doctest: +SKIP
>>> store.stats().describe()                        # doctest: +SKIP
'result store at store: 19200 object(s), ...'
"""

from repro.store.keys import content_fingerprint, unit_digests
from repro.store.store import (
    STORE_FORMAT,
    STORE_POLICIES,
    ResultStore,
    StoreError,
    StoreStats,
    open_store,
)

__all__ = [
    "STORE_FORMAT",
    "STORE_POLICIES",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "content_fingerprint",
    "open_store",
    "unit_digests",
]
