"""The longitudinal run ledger: every run leaves a durable record.

A :class:`Ledger` is an append-only, sharded JSONL archive of
normalized :class:`RunRecord` payloads — one per campaign, benchmark,
or service job — so runs separated by days (or machines) can be
compared statistically instead of eyeballed:

.. code-block:: text

    <ledger>/
        manifest.json              # atomic write; pins format + schema
        runs/<fp[:2]>/<fp>.jsonl   # one shard per grid fingerprint

Records for the same spec land in the same shard, keyed by the spec's
grid :func:`~repro.campaign.spec.payload_fingerprint` — the detector
(:mod:`repro.obs.drift`) only ever compares runs of identical grids,
so the fingerprint IS the baseline-matching key.  Benchmark records
use a fingerprint derived from the bench name.

Durability follows the two disciplines already in the tree: the
manifest is written atomically (``mkstemp`` + ``fsync`` +
``os.replace``, as in :mod:`repro.store`), and record appends are
fsync'd whole lines with torn-tail repair (as in
:mod:`repro.campaign.journal`) — a writer SIGKILLed mid-append leaves
at most one incomplete trailing line, which the next append truncates
and every read forgives.  The newest valid record is therefore always
intact.

The ledger is opt-in and ambient: pass a path explicitly, use the
``--ledger`` CLI flag, or export ``REPRO_LEDGER=<dir>`` and every
campaign/bench/service entry point picks it up.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.serialize import iter_jsonl, jsonl_line
from repro.obs.registry import ObsError

LEDGER_FORMAT = 1
RUN_RECORD_SCHEMA = 1
LEDGER_ENV = "REPRO_LEDGER"

#: Record kinds; free-form strings are allowed but these are the ones
#: the built-in emitters write.
KIND_CAMPAIGN = "campaign"
KIND_BENCH = "bench"
KIND_SERVICE = "service"


class TimelineError(ObsError):
    """A malformed ledger, record, or query."""


def ledger_env_root() -> Optional[Path]:
    """The ambient ledger directory, if ``REPRO_LEDGER`` is set."""
    root = os.environ.get(LEDGER_ENV, "").strip()
    return Path(root) if root else None


def resolve_ledger(
    path: Optional[Union[str, Path]] = None
) -> Optional["Ledger"]:
    """An opened ledger from an explicit path or the environment.

    Returns ``None`` when neither is given — callers treat that as
    "ledger emission disabled", which keeps the warm path free of any
    ledger cost unless one was asked for.
    """
    root = Path(path) if path is not None else ledger_env_root()
    if root is None:
        return None
    return Ledger(root)


@dataclass
class RunRecord:
    """One normalized run: identity, outcome totals, and telemetry."""

    kind: str
    name: str
    fingerprint: str
    utc: float
    seed: Optional[int] = None
    backend: Optional[str] = None
    equivalence: Optional[str] = None
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    units: int = 0
    kills: int = 0
    instances: int = 0
    killed_units: int = 0
    #: Per-environment-kind breakdown of the four totals above.
    kinds: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-unit ``[kills, instances]`` in global unit-index order.
    #: What makes *prefix-exact* live drift detection possible: a
    #: monitor can compare cumulative kills against the baseline's
    #: expectation for exactly the units completed so far, instead of
    #: against a pooled rate that ordering noise wanders around.
    units_detail: Optional[List[List[int]]] = None
    #: Drained/final MetricsRegistry snapshot (schema 1), if any.
    metrics: Optional[Dict[str, Any]] = None
    #: BENCH-style per-stage summaries (median/p90/...), if any.
    bench: Optional[Dict[str, Any]] = None
    #: Free-form context (job id, tenant, env fingerprint, ...).
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": RUN_RECORD_SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "utc": self.utc,
            "seed": self.seed,
            "backend": self.backend,
            "equivalence": self.equivalence,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "units": self.units,
            "kills": self.kills,
            "instances": self.instances,
            "killed_units": self.killed_units,
            "kinds": self.kinds,
        }
        if self.units_detail is not None:
            payload["units_detail"] = self.units_detail
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.bench is not None:
            payload["bench"] = self.bench
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        if not isinstance(payload, dict):
            raise TimelineError("run record payload is not an object")
        if payload.get("schema") != RUN_RECORD_SCHEMA:
            raise TimelineError(
                f"unsupported run record schema "
                f"{payload.get('schema')!r} (this build reads schema "
                f"{RUN_RECORD_SCHEMA})"
            )
        try:
            return cls(
                kind=payload["kind"],
                name=payload["name"],
                fingerprint=payload["fingerprint"],
                utc=float(payload["utc"]),
                seed=payload.get("seed"),
                backend=payload.get("backend"),
                equivalence=payload.get("equivalence"),
                wall_seconds=float(payload.get("wall_seconds", 0.0)),
                cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
                units=int(payload.get("units", 0)),
                kills=int(payload.get("kills", 0)),
                instances=int(payload.get("instances", 0)),
                killed_units=int(payload.get("killed_units", 0)),
                kinds=payload.get("kinds", {}),
                units_detail=payload.get("units_detail"),
                metrics=payload.get("metrics"),
                bench=payload.get("bench"),
                extra=payload.get("extra", {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TimelineError(f"malformed run record: {error}")

    @property
    def kill_rate(self) -> float:
        return self.kills / self.instances if self.instances else 0.0

    @property
    def killed_fraction(self) -> float:
        return self.killed_units / self.units if self.units else 0.0

    def describe(self) -> str:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(self.utc)
        )
        bits = [
            f"{when}Z",
            f"{self.kind}:{self.name}",
            f"fp={self.fingerprint}",
        ]
        if self.backend:
            bits.append(f"backend={self.backend}")
        if self.units:
            bits.append(
                f"units={self.units} kills={self.kills}/"
                f"{self.instances} ({self.kill_rate:.4%})"
            )
        if self.bench:
            bits.append(f"bench stages={len(self.bench)}")
        bits.append(f"wall={self.wall_seconds:.2f}s")
        return "  ".join(bits)


def _spec_equivalence(spec: Any) -> Optional[str]:
    """The spec's backend equivalence contract, if resolvable."""
    method = getattr(spec, "equivalence", None)
    if method is None:
        return None
    try:
        value = method()
    except Exception:
        return None
    return value if isinstance(value, str) else None


def record_from_outcome(
    outcome: Any,
    kind: str = KIND_CAMPAIGN,
    extra: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """Normalize a :class:`~repro.campaign.scheduler.CampaignOutcome`."""
    metrics = outcome.metrics
    registry = getattr(metrics, "registry", None)
    return record_from_results(
        outcome.spec,
        outcome.results,
        kind=kind,
        wall_seconds=metrics.wall_seconds,
        registry=registry,
        utc=getattr(metrics, "finished_at_utc", None),
        extra=extra,
    )


def record_from_results(
    spec: Any,
    results: Dict[Any, Any],
    kind: str = KIND_CAMPAIGN,
    wall_seconds: float = 0.0,
    registry: Optional[Any] = None,
    utc: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """Normalize assembled per-kind results into a run record.

    Totals are recomputed from the assembled results (not the metrics)
    so a resumed or store-warmed run reports the same outcome numbers
    as the run that executed every unit — the ledger records *what the
    grid produced*, which is what drift detection compares.
    """
    per_kind: Dict[str, Dict[str, int]] = {}
    units = kills = instances = killed_units = 0
    # Per-kind runs are in global unit-index order (assemble_results
    # sorts them), so zipping each kind's runs with that kind's unit
    # indices recovers the per-unit detail the live monitor needs.
    kind_indices: Dict[str, List[int]] = {}
    for index, unit in enumerate(spec.units()):
        kind_indices.setdefault(unit.kind.name, []).append(index)
    detail: Dict[int, List[int]] = {}
    for env_kind, result in sorted(
        results.items(), key=lambda item: item[0].name
    ):
        bucket = {"units": 0, "kills": 0, "instances": 0,
                  "killed_units": 0}
        indices = kind_indices.get(env_kind.name, [])
        aligned = len(indices) == len(result.runs)
        for position, run in enumerate(result.runs):
            run_instances = (
                run.iterations * run.instances_per_iteration
            )
            bucket["units"] += 1
            bucket["kills"] += run.kills
            bucket["instances"] += run_instances
            if run.kills > 0:
                bucket["killed_units"] += 1
            if aligned:
                detail[indices[position]] = [run.kills, run_instances]
        per_kind[env_kind.name.lower()] = bucket
        units += bucket["units"]
        kills += bucket["kills"]
        instances += bucket["instances"]
        killed_units += bucket["killed_units"]
    units_detail: Optional[List[List[int]]] = None
    if detail and sorted(detail) == list(range(len(detail))):
        units_detail = [detail[index] for index in range(len(detail))]
    cpu_seconds = 0.0
    snapshot = None
    if registry is not None:
        snapshot = registry.snapshot()
        cpu_seconds = registry.family_total(
            "repro_campaign_busy_seconds_total"
        )
    return RunRecord(
        kind=kind,
        name=spec.name,
        fingerprint=spec.fingerprint(),
        utc=utc or time.time(),
        seed=spec.seed,
        backend=spec.backend,
        equivalence=_spec_equivalence(spec),
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        units=units,
        kills=kills,
        instances=instances,
        killed_units=killed_units,
        kinds=per_kind,
        units_detail=units_detail,
        metrics=snapshot,
        extra=dict(extra or {}),
    )


def bench_fingerprint(bench: str) -> str:
    """The baseline-matching key for one named benchmark."""
    from repro.campaign.spec import payload_fingerprint

    return payload_fingerprint(
        {"bench": bench, "schema": RUN_RECORD_SCHEMA}
    )


def record_from_bench(
    bench: str,
    stages: Dict[str, Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """Normalize one BENCH emission into a run record."""
    wall = 0.0
    for summary in stages.values():
        try:
            wall += float(summary.get("sum", 0.0))
        except (AttributeError, TypeError, ValueError):
            pass
    return RunRecord(
        kind=KIND_BENCH,
        name=bench,
        fingerprint=bench_fingerprint(bench),
        utc=time.time(),
        wall_seconds=wall,
        bench=stages,
        extra=dict(extra or {}),
    )


class Ledger:
    """A sharded, crash-safe, append-only archive of run records."""

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.manifest_path = self.root / "manifest.json"
        if create:
            self._ensure_manifest()
        elif not self.manifest_path.exists():
            raise TimelineError(f"{self.root}: not a run ledger")

    # -- layout ------------------------------------------------------------

    def shard_path(self, fingerprint: str) -> Path:
        if not fingerprint or len(fingerprint) < 3:
            raise TimelineError(
                f"malformed ledger fingerprint: {fingerprint!r}"
            )
        return (
            self.runs_dir / fingerprint[:2] / f"{fingerprint}.jsonl"
        )

    def fingerprints(self) -> List[str]:
        if not self.runs_dir.exists():
            return []
        return sorted(
            path.stem
            for path in self.runs_dir.glob("*/*.jsonl")
        )

    def _ensure_manifest(self) -> None:
        if self.manifest_path.exists():
            manifest = self._load_manifest()
            if manifest.get("format") != LEDGER_FORMAT:
                raise TimelineError(
                    f"{self.root}: ledger format "
                    f"{manifest.get('format')!r} is not the supported "
                    f"format {LEDGER_FORMAT}"
                )
            return
        self._write_atomic(
            self.manifest_path,
            json.dumps(
                {
                    "format": LEDGER_FORMAT,
                    "record_schema": RUN_RECORD_SCHEMA,
                    "created_utc": time.time(),
                },
                sort_keys=True,
            )
            + "\n",
        )

    def _load_manifest(self) -> Dict[str, Any]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TimelineError(
                f"{self.root}: unreadable ledger manifest: {error}"
            )

    def _write_atomic(self, target: Path, text: str) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- writing -----------------------------------------------------------

    def _repair(self, path: Path) -> None:
        """Truncate a torn trailing line left by a killed writer."""
        try:
            data = path.read_bytes()
        except OSError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, record: RunRecord) -> Path:
        """Durably append one record to its fingerprint shard.

        The line is flushed and fsync'd before returning; a crash
        after ``append`` never loses the record, a crash during it
        leaves a torn tail that the next append (or any read)
        discards.
        """
        path = self.shard_path(record.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            self._repair(path)
        line = jsonl_line(record.to_dict()) + "\n"
        with open(path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        return path

    # -- reading -----------------------------------------------------------

    def _shard_records(self, path: Path) -> List[RunRecord]:
        records: List[RunRecord] = []
        for payload in iter_jsonl(path, tolerate_truncated_tail=True):
            records.append(RunRecord.from_dict(payload))
        return records

    def history(
        self,
        fingerprint: Optional[str] = None,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Matching records, oldest first (append order per shard)."""
        if fingerprint is not None:
            paths = [self.shard_path(fingerprint)]
        else:
            paths = [
                self.shard_path(fp) for fp in self.fingerprints()
            ]
        records: List[RunRecord] = []
        for path in paths:
            if not path.exists():
                continue
            records.extend(self._shard_records(path))
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if name is not None:
            records = [r for r in records if r.name == name]
        records.sort(key=lambda record: record.utc)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def latest(
        self, fingerprint: str, kind: Optional[str] = None
    ) -> Optional[RunRecord]:
        records = self.history(fingerprint=fingerprint, kind=kind)
        return records[-1] if records else None

    def baseline(
        self,
        fingerprint: str,
        window: int = 10,
        kind: Optional[str] = None,
        before_utc: Optional[float] = None,
    ) -> List[RunRecord]:
        """The baseline window: up to ``window`` runs before the
        newest one (or before ``before_utc``), oldest first."""
        records = self.history(fingerprint=fingerprint, kind=kind)
        if before_utc is not None:
            records = [r for r in records if r.utc < before_utc]
        else:
            records = records[:-1]
        if window >= 0:
            records = records[-window:] if window else []
        return records

    def describe(self) -> str:
        lines = [f"run ledger at {self.root}"]
        for fp in self.fingerprints():
            records = self.history(fingerprint=fp)
            if not records:
                continue
            newest = records[-1]
            lines.append(
                f"  {fp}  {len(records):4d} run(s)  "
                f"latest {newest.kind}:{newest.name}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
