"""repro.obs — unified tracing, metrics, and profiling.

One dependency-free subsystem answers "what did the pipeline spend its
time on, and did the caches earn their keep" for every layer above the
formal model:

* :mod:`repro.obs.registry` — process-local counters/gauges/histograms
  whose snapshots merge associatively across worker processes;
* :mod:`repro.obs.tracer` — nested wall/CPU-time spans with
  deterministic sampling and a bounded, deterministically-dropping
  buffer, rendered as a "top spans / hot path" profile;
* :mod:`repro.obs.events` — structured lifecycle events (unit retried,
  deadline hit, serial fallback, candidate dropped);
* :mod:`repro.obs.recorder` — the facade call sites dispatch to; a
  no-op by default so disabled instrumentation costs one dynamic
  dispatch and nothing else;
* :mod:`repro.obs.export` — JSONL and Prometheus-text artifacts;
* :mod:`repro.obs.caches` — delta publication of the oracle cache and
  vectorized-backend memo counters;
* :mod:`repro.obs.bench` — the shared ``BENCH_obs.json`` perf artifact.

Typical use (the CLI's ``--metrics-out``/``--trace`` flags do this):

>>> from repro import obs
>>> rec = obs.enable(trace=True)
>>> with obs.recorder().span("my_phase", detail="x"):
...     obs.recorder().counter_inc("my_things_total")
>>> # ... run the workload ...
>>> # obs.write_artifacts("out/obs", rec)   # doctest: +SKIP
"""

from repro.obs.bench import (
    bench_obs_path,
    emit,
    env_fingerprint,
    histogram_summary,
    update_bench_obs,
)
from repro.obs.caches import publish_cache_metrics, reset_publisher
from repro.obs.drift import (
    DriftReport,
    Finding,
    binomial_two_sided_p,
    binomial_z,
    check_run,
    compare,
    diff_runs,
)
from repro.obs.health import (
    HealthConfig,
    HealthMonitor,
    expected_rate_from_baseline,
    expected_units_from_baseline,
)
from repro.obs.events import EventLog
from repro.obs.export import (
    METRICS_FILENAME,
    PROM_FILENAME,
    TRACE_FILENAME,
    load_metrics_jsonl,
    load_trace_jsonl,
    metrics_jsonl_lines,
    prom_text,
    trace_jsonl_lines,
    write_artifacts,
)
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    configure,
    disable,
    enable,
    is_enabled,
    recorder,
    set_recorder,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    RATE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    merge_snapshots,
)
from repro.obs.report import (
    render_events,
    render_metrics,
    render_profile,
    render_report,
)
from repro.obs.timeline import (
    Ledger,
    RunRecord,
    TimelineError,
    record_from_bench,
    record_from_outcome,
    record_from_results,
    resolve_ledger,
)
from repro.obs.tracer import Tracer, aggregate_spans, hot_path

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DriftReport",
    "EventLog",
    "Finding",
    "Gauge",
    "HealthConfig",
    "HealthMonitor",
    "Histogram",
    "Ledger",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "NullRecorder",
    "ObsError",
    "PROM_FILENAME",
    "RATE_BUCKETS",
    "Recorder",
    "RunRecord",
    "TRACE_FILENAME",
    "TimelineError",
    "Tracer",
    "aggregate_spans",
    "bench_obs_path",
    "binomial_two_sided_p",
    "binomial_z",
    "check_run",
    "compare",
    "configure",
    "diff_runs",
    "disable",
    "emit",
    "enable",
    "env_fingerprint",
    "expected_rate_from_baseline",
    "expected_units_from_baseline",
    "histogram_summary",
    "hot_path",
    "is_enabled",
    "load_metrics_jsonl",
    "load_trace_jsonl",
    "merge_snapshots",
    "metrics_jsonl_lines",
    "prom_text",
    "publish_cache_metrics",
    "record_from_bench",
    "record_from_outcome",
    "record_from_results",
    "recorder",
    "render_events",
    "render_metrics",
    "render_profile",
    "render_report",
    "reset_publisher",
    "resolve_ledger",
    "set_recorder",
    "trace_jsonl_lines",
    "update_bench_obs",
    "write_artifacts",
]
