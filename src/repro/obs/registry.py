"""The process-local metrics registry: counters, gauges, histograms.

Instruments are keyed by (family name, sorted label pairs) and live in
one :class:`MetricsRegistry` per process.  The registry's load-bearing
property is *mergeability*: :meth:`MetricsRegistry.snapshot` produces a
plain-dict payload that travels through pickle/JSON, and
:meth:`MetricsRegistry.merge` folds any number of such payloads back in
with **associative, commutative** semantics — counters and histogram
buckets add, gauges take the maximum, histogram min/max combine — so
per-worker snapshots can be merged at the scheduler in any order (or
any grouping) and produce identical totals.  ``tests/obs`` asserts
exactly that.

Histograms use *fixed* bucket boundaries declared at first observation
(per family), so two processes observing the same family always
produce mergeable bucket vectors; quantiles are estimated by linear
interpolation inside the owning bucket, with the recorded min/max
tightening the first and overflow buckets.

Everything here is stdlib-only; numpy never enters the hot path.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

SNAPSHOT_SCHEMA = 1

#: Default boundaries for wall-time histograms (seconds).  Spans four
#: orders of magnitude: sub-ms campaign units up to multi-minute grids.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
    300.0,
)

#: Boundaries for fractions in [0, 1] (cache hit rates and the like).
RATE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


class ObsError(ReproError):
    """Misuse of the observability layer (bad name, bucket mismatch)."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObsError(
            f"metric name {name!r} is not Prometheus-compatible "
            f"(want [a-zA-Z_][a-zA-Z0-9_]*)"
        )
    return name


def label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum.  Merge = addition."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value.  Merge = max (order-independent).

    The max-merge rule is what keeps cross-worker merging associative:
    publish only values that never decrease over a process's lifetime
    (cache sizes, high-water marks, absolute timestamps).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram with an overflow bucket.

    ``counts[i]`` counts observations ``<= buckets[i]``-exclusive band
    (non-cumulative); ``counts[-1]`` is the overflow band above the
    last boundary.  Cumulative-``le`` form is derived at export time.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError("a histogram needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram boundaries must be strictly increasing: "
                f"{bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) from the bucket counts.

        Linear interpolation inside the owning bucket; the observed
        min/max bound the open-ended first and overflow buckets, so a
        single-value histogram reports that value for every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == 0:
                    low = self.min
                elif index == len(self.buckets):
                    low = self.buckets[-1]
                else:
                    low = self.buckets[index - 1]
                high = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.max
                )
                low = max(low, self.min)
                high = min(high, self.max)
                if high <= low or bucket_count == 0:
                    return low
                fraction = (rank - cumulative) / bucket_count
                return low + fraction * (high - low)
            cumulative += bucket_count
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """All instruments of one process, mergeable across processes."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: Bucket boundaries are fixed per *family*, not per label set,
        #: so every label combination of a family stays mergeable.
        self._family_buckets: Dict[str, Tuple[float, ...]] = {}

    # -- recording ---------------------------------------------------------

    def counter(self, name: str, labels: Optional[Mapping[str, Any]] = None) -> Counter:
        key = (_check_name(name), label_key(labels or {}))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, labels: Optional[Mapping[str, Any]] = None) -> Gauge:
        key = (_check_name(name), label_key(labels or {}))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        name = _check_name(name)
        family_buckets = self._family_buckets.get(name)
        if family_buckets is None:
            family_buckets = tuple(
                float(b) for b in (buckets or DEFAULT_TIME_BUCKETS)
            )
            self._family_buckets[name] = family_buckets
        elif buckets is not None and tuple(
            float(b) for b in buckets
        ) != family_buckets:
            raise ObsError(
                f"histogram family {name!r} already declared with "
                f"boundaries {family_buckets}"
            )
        key = (name, label_key(labels or {}))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(family_buckets)
        return instrument

    # -- iteration (stable order for rendering/export) ---------------------

    def iter_counters(self) -> Iterator[Tuple[str, LabelKey, Counter]]:
        for (name, labels), instrument in sorted(self._counters.items()):
            yield name, labels, instrument

    def iter_gauges(self) -> Iterator[Tuple[str, LabelKey, Gauge]]:
        for (name, labels), instrument in sorted(self._gauges.items()):
            yield name, labels, instrument

    def iter_histograms(self) -> Iterator[Tuple[str, LabelKey, Histogram]]:
        for (name, labels), instrument in sorted(self._histograms.items()):
            yield name, labels, instrument

    def counter_value(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        instrument = self._counters.get((name, label_key(labels or {})))
        return instrument.value if instrument is not None else 0.0

    def family_total(self, name: str) -> float:
        """Sum of a counter family over every label combination."""
        return sum(
            instrument.value
            for (family, _), instrument in self._counters.items()
            if family == name
        )

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
        )

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy safe to pickle, JSON-encode, and merge."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": [
                {"name": name, "labels": dict(labels), "value": c.value}
                for name, labels, c in self.iter_counters()
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": g.value}
                for name, labels, g in self.iter_gauges()
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "min": None if h.count == 0 else h.min,
                    "max": None if h.count == 0 else h.max,
                }
                for name, labels, h in self.iter_histograms()
            ],
        }

    def merge(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Fold one snapshot payload in (associative + commutative)."""
        if not payload:
            return
        for entry in payload.get("counters", ()):
            self.counter(entry["name"], entry["labels"]).value += entry[
                "value"
            ]
        for entry in payload.get("gauges", ()):
            gauge = self.gauge(entry["name"], entry["labels"])
            gauge.value = max(gauge.value, entry["value"])
        for entry in payload.get("histograms", ()):
            histogram = self.histogram(
                entry["name"], entry["labels"], buckets=entry["buckets"]
            )
            counts = entry["counts"]
            if len(counts) != len(histogram.counts):
                raise ObsError(
                    f"histogram {entry['name']!r} bucket count mismatch "
                    f"({len(counts)} vs {len(histogram.counts)})"
                )
            for index, count in enumerate(counts):
                histogram.counts[index] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]
            if entry["min"] is not None:
                histogram.min = min(histogram.min, entry["min"])
            if entry["max"] is not None:
                histogram.max = max(histogram.max, entry["max"])

    def drain(self) -> Dict[str, Any]:
        """Snapshot, then reset — the shard-shipping primitive.

        A worker drains after every shard and ships the delta; since
        deltas are disjoint, the scheduler's merges add up to exactly
        the worker's lifetime totals, in any arrival order.
        """
        payload = self.snapshot()
        self.reset()
        return payload

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        # Family boundaries survive a reset on purpose: the next
        # observation after a drain must stay mergeable with the past.

    def is_empty(self) -> bool:
        return len(self) == 0


def merge_snapshots(
    payloads: Sequence[Mapping[str, Any]]
) -> MetricsRegistry:
    """A fresh registry holding the fold of all payloads."""
    registry = MetricsRegistry()
    for payload in payloads:
        registry.merge(payload)
    return registry
