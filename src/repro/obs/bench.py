"""The standardized ``BENCH_obs.json`` performance artifact.

Every benchmark that times pipeline stages writes its per-stage
distribution summary (count/sum/median/p90, derived from the obs
histograms) into one shared JSON file, keyed by bench name, so the
perf trajectory is comparable PR-over-PR with a single artifact diff:

.. code-block:: json

    {"schema": 1, "benches": {
        "backend_speedup": {"stages": {
            "analytic": {"count": 4, "median": 0.41, "p90": 0.52, ...}
    }}}}

The file is update-in-place: each bench replaces only its own entry,
so ``bench_backend_speedup`` and ``bench_campaign_scaling`` can run in
any order (or alone) without clobbering each other.  Path defaults to
``BENCH_obs.json`` in the working directory; override with the
``BENCH_OBS_PATH`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.registry import MetricsRegistry

BENCH_SCHEMA = 1
DEFAULT_PATH = "BENCH_obs.json"


def bench_obs_path(path: Optional[Union[str, Path]] = None) -> Path:
    if path is not None:
        return Path(path)
    return Path(os.environ.get("BENCH_OBS_PATH", DEFAULT_PATH))


def histogram_summary(
    registry: MetricsRegistry, family: str
) -> Dict[str, float]:
    """count/sum/mean/median/p90 for one histogram family.

    Aggregates over every label set of the family (merging label sets
    into one distribution), which is what a stage summary wants: "the
    grid-time distribution of this stage", whatever backends or
    workers it labelled.
    """
    merged = MetricsRegistry()
    snapshot = registry.snapshot()
    snapshot["counters"] = []
    snapshot["gauges"] = []
    snapshot["histograms"] = [
        {**entry, "labels": {}}
        for entry in snapshot["histograms"]
        if entry["name"] == family
    ]
    merged.merge(snapshot)
    histogram = merged.histogram(family)
    return {
        "count": histogram.count,
        "sum": round(histogram.sum, 6),
        "mean": round(histogram.mean, 6),
        "median": round(histogram.quantile(0.5), 6),
        "p90": round(histogram.quantile(0.9), 6),
    }


def update_bench_obs(
    bench: str,
    stages: Dict[str, Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
) -> Path:
    """Replace one bench's entry in the shared artifact."""
    target = bench_obs_path(path)
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA, "benches": {}}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
        except (json.JSONDecodeError, OSError):
            existing = None
        if (
            isinstance(existing, dict)
            and existing.get("schema") == BENCH_SCHEMA
            and isinstance(existing.get("benches"), dict)
        ):
            payload = existing
    payload["benches"][bench] = {
        "updated_utc": time.time(),
        "stages": stages,
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
