"""The standardized ``BENCH_obs.json`` performance artifact.

Every benchmark that times pipeline stages writes its per-stage
distribution summary (count/sum/median/p90, derived from the obs
histograms) into one shared JSON file, keyed by bench name, so the
perf trajectory is comparable PR-over-PR with a single artifact diff:

.. code-block:: json

    {"schema": 1, "benches": {
        "backend_speedup": {"stages": {
            "analytic": {"count": 4, "median": 0.41, "p90": 0.52, ...}
    }}}}

The file is update-in-place: each bench replaces only its own entry,
so ``bench_backend_speedup`` and ``bench_campaign_scaling`` can run in
any order (or alone) without clobbering each other.  Path defaults to
``BENCH_obs.json`` in the working directory; override with the
``BENCH_OBS_PATH`` environment variable.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.registry import MetricsRegistry, ObsError

BENCH_SCHEMA = 1
DEFAULT_PATH = "BENCH_obs.json"
#: Stage statistics every emission must carry (validated by emit()).
REQUIRED_STAGE_STATS = ("median", "p90")


def bench_obs_path(path: Optional[Union[str, Path]] = None) -> Path:
    if path is not None:
        return Path(path)
    return Path(os.environ.get("BENCH_OBS_PATH", DEFAULT_PATH))


def histogram_summary(
    registry: MetricsRegistry, family: str
) -> Dict[str, float]:
    """count/sum/mean/median/p90 for one histogram family.

    Aggregates over every label set of the family (merging label sets
    into one distribution), which is what a stage summary wants: "the
    grid-time distribution of this stage", whatever backends or
    workers it labelled.
    """
    merged = MetricsRegistry()
    snapshot = registry.snapshot()
    snapshot["counters"] = []
    snapshot["gauges"] = []
    snapshot["histograms"] = [
        {**entry, "labels": {}}
        for entry in snapshot["histograms"]
        if entry["name"] == family
    ]
    merged.merge(snapshot)
    histogram = merged.histogram(family)
    return {
        "count": histogram.count,
        "sum": round(histogram.sum, 6),
        "mean": round(histogram.mean, 6),
        "median": round(histogram.quantile(0.5), 6),
        "p90": round(histogram.quantile(0.9), 6),
    }


def env_fingerprint() -> str:
    """A short fingerprint of the measuring environment.

    Two BENCH entries with different environment fingerprints are not
    comparable as a perf trajectory; the drift detector reports the
    mismatch instead of a latency verdict.
    """
    from repro.campaign.spec import payload_fingerprint

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = "absent"
    return payload_fingerprint(
        {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "numpy": numpy_version,
        }
    )


def update_bench_obs(
    bench: str,
    stages: Dict[str, Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
    env: Optional[str] = None,
) -> Path:
    """Replace one bench's entry in the shared artifact.

    The write is atomic (tmp + fsync + rename): benches running in
    parallel CI jobs or a crash mid-write leave either the old or the
    new artifact, never a torn one.
    """
    target = bench_obs_path(path)
    payload: Dict[str, Any] = {"schema": BENCH_SCHEMA, "benches": {}}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
        except (json.JSONDecodeError, OSError):
            existing = None
        if (
            isinstance(existing, dict)
            and existing.get("schema") == BENCH_SCHEMA
            and isinstance(existing.get("benches"), dict)
        ):
            payload = existing
    entry: Dict[str, Any] = {
        "updated_utc": time.time(),
        "stages": stages,
    }
    entry["env"] = env if env is not None else env_fingerprint()
    payload["benches"][bench] = entry
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=".tmp-bench-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def validate_stages(stages: Dict[str, Dict[str, Any]]) -> None:
    """Reject emissions that would poison the trajectory."""
    if not isinstance(stages, dict) or not stages:
        raise ObsError(
            "a bench emission needs at least one named stage"
        )
    for stage, summary in stages.items():
        if not isinstance(stage, str) or not stage:
            raise ObsError(f"invalid bench stage name: {stage!r}")
        if not isinstance(summary, dict):
            raise ObsError(
                f"bench stage {stage!r}: summary must be a mapping, "
                f"got {type(summary).__name__}"
            )
        for stat in REQUIRED_STAGE_STATS:
            value = summary.get(stat)
            if not isinstance(value, (int, float)) or value < 0:
                raise ObsError(
                    f"bench stage {stage!r}: missing or invalid "
                    f"required statistic {stat!r} (got {value!r})"
                )


def emit(
    bench: str,
    stages: Dict[str, Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
    ledger: Optional[Union[str, Path]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """The one emission path every benchmark routes through.

    Validates the stage schema (every stage needs numeric median and
    p90), stamps the environment fingerprint, updates the shared
    ``BENCH_obs.json`` atomically, and — when a ledger is configured
    explicitly or via ``REPRO_LEDGER`` — appends a durable
    :class:`~repro.obs.timeline.RunRecord` so the perf trajectory
    survives beyond the working directory.
    """
    if not isinstance(bench, str) or not bench:
        raise ObsError(f"invalid bench name: {bench!r}")
    validate_stages(stages)
    env = env_fingerprint()
    target = update_bench_obs(bench, stages, path=path, env=env)
    from repro.obs.timeline import record_from_bench, resolve_ledger

    active = resolve_ledger(ledger)
    if active is not None:
        record = record_from_bench(
            bench, stages, extra={"env": env, **(extra or {})}
        )
        active.append(record)
    return target
