"""Exporters: Prometheus text and JSONL metrics/trace artifacts.

A campaign (or synthesis) run with ``--metrics-out DIR`` leaves three
machine-readable files next to its journal:

* ``metrics.jsonl`` — one JSON object per line: a ``meta`` header,
  then every counter/gauge/histogram, then every logged event.  This
  is the *lossless* artifact: :func:`load_metrics_jsonl` rebuilds the
  registry exactly, which is what ``repro obs report`` and ``repro obs
  export`` consume.
* ``metrics.prom`` — the same registry in Prometheus text exposition
  format (histograms as cumulative ``le`` buckets + ``_sum`` +
  ``_count``), ready for a pushgateway or textfile collector.
* ``trace.jsonl`` — one span per line (when tracing was on), the
  input to the hot-path profile report.

``scripts/check_obs_export.py`` validates all three against the
schemas declared here.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.events import EventLog
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricsRegistry, ObsError

METRICS_SCHEMA = 1
TRACE_SCHEMA = 1

METRICS_FILENAME = "metrics.jsonl"
PROM_FILENAME = "metrics.prom"
TRACE_FILENAME = "trace.jsonl"


def _jsonl(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- JSONL ---------------------------------------------------------------------


def metrics_jsonl_lines(
    registry: MetricsRegistry,
    events: Optional[Union[EventLog, List[Dict[str, Any]]]] = None,
) -> List[str]:
    """The ``metrics.jsonl`` artifact, line by line.

    ``events`` may be a live :class:`EventLog` or the plain record
    list :func:`load_metrics_jsonl` returns, so re-export round-trips.
    """
    lines = [
        _jsonl(
            {
                "type": "meta",
                "schema": METRICS_SCHEMA,
                "created_utc": time.time(),
            }
        )
    ]
    snapshot = registry.snapshot()
    for entry in snapshot["counters"]:
        lines.append(_jsonl({"type": "counter", **entry}))
    for entry in snapshot["gauges"]:
        lines.append(_jsonl({"type": "gauge", **entry}))
    for entry in snapshot["histograms"]:
        lines.append(_jsonl({"type": "histogram", **entry}))
    if events is not None:
        for event in events:
            lines.append(_jsonl({"type": "event", **event}))
        dropped = getattr(events, "dropped", 0)
        if dropped:
            lines.append(
                _jsonl({"type": "events_dropped", "count": dropped})
            )
    return lines


def trace_jsonl_lines(spans: Iterable[Dict[str, Any]], dropped: int = 0) -> List[str]:
    lines = [
        _jsonl(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "created_utc": time.time(),
            }
        )
    ]
    for span in spans:
        lines.append(_jsonl({"type": "span", **span}))
    if dropped:
        lines.append(_jsonl({"type": "spans_dropped", "count": dropped}))
    return lines


def load_metrics_jsonl(
    path: Union[str, Path]
) -> Tuple[MetricsRegistry, List[Dict[str, Any]]]:
    """Rebuild (registry, events) from a ``metrics.jsonl`` artifact."""
    path = Path(path)
    if not path.exists():
        raise ObsError(f"no metrics artifact at {path}")
    registry = MetricsRegistry()
    events: List[Dict[str, Any]] = []
    payload: Dict[str, List[Dict[str, Any]]] = {
        "counters": [], "gauges": [], "histograms": []
    }
    for line_number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObsError(
                f"{path}:{line_number} is not JSON: {error}"
            ) from None
        kind = record.get("type")
        if kind == "meta":
            schema = record.get("schema")
            if schema != METRICS_SCHEMA:
                raise ObsError(
                    f"{path} has unsupported metrics schema {schema!r}"
                )
        elif kind in ("counter", "gauge", "histogram"):
            payload[kind + "s"].append(record)
        elif kind == "event":
            events.append(record)
        elif kind == "events_dropped":
            pass
        else:
            raise ObsError(
                f"{path}:{line_number} has unknown record type {kind!r}"
            )
    registry.merge(payload)
    return registry, events


def load_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Span records from a ``trace.jsonl`` artifact."""
    path = Path(path)
    if not path.exists():
        raise ObsError(f"no trace artifact at {path}")
    spans: List[Dict[str, Any]] = []
    for line_number, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "span":
            spans.append(record)
        elif kind in ("meta", "spans_dropped"):
            continue
        else:
            raise ObsError(
                f"{path}:{line_number} has unknown record type {kind!r}"
            )
    return spans


# -- Prometheus text format ----------------------------------------------------


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{_prom_escape(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prom_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def declare(name: str, prom_type: str) -> None:
        if name not in seen_types:
            seen_types[name] = prom_type
            lines.append(f"# TYPE {name} {prom_type}")

    for name, labels, counter in registry.iter_counters():
        declare(name, "counter")
        lines.append(
            f"{name}{_prom_labels(dict(labels))} "
            f"{_prom_number(counter.value)}"
        )
    for name, labels, gauge in registry.iter_gauges():
        declare(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(dict(labels))} "
            f"{_prom_number(gauge.value)}"
        )
    for name, labels, histogram in registry.iter_histograms():
        declare(name, "histogram")
        label_map = dict(labels)
        cumulative = 0
        for bound, count in zip(
            histogram.buckets, histogram.counts[:-1]
        ):
            cumulative += count
            le = 'le="' + _prom_number(bound) + '"'
            lines.append(
                f"{name}_bucket{_prom_labels(label_map, le)} {cumulative}"
            )
        cumulative += histogram.counts[-1]
        le_inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_prom_labels(label_map, le_inf)} {cumulative}"
        )
        lines.append(
            f"{name}_sum{_prom_labels(label_map)} "
            f"{_prom_number(histogram.sum)}"
        )
        lines.append(
            f"{name}_count{_prom_labels(label_map)} {histogram.count}"
        )
    return "\n".join(lines) + "\n"


# -- artifact writing ----------------------------------------------------------


def write_artifacts(
    out_dir: Union[str, Path],
    rec: Recorder,
    trace: Optional[bool] = None,
) -> Dict[str, Path]:
    """Write metrics.jsonl + metrics.prom (+ trace.jsonl) to a directory.

    Returns the written paths keyed by artifact name.  ``trace`` is
    derived from the recorder when not forced.
    """
    if not rec.enabled:
        raise ObsError(
            "cannot export artifacts from a disabled recorder; call "
            "repro.obs.enable() before running the workload"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}

    # Buffer truncation must be visible in the artifacts even when
    # nothing was drained (single-process runs export directly).
    rec.publish_drop_counters()

    metrics_path = out / METRICS_FILENAME
    metrics_path.write_text(
        "\n".join(metrics_jsonl_lines(rec.registry, rec.events)) + "\n"
    )
    paths["metrics"] = metrics_path

    prom_path = out / PROM_FILENAME
    prom_path.write_text(prom_text(rec.registry))
    paths["prom"] = prom_path

    want_trace = rec.trace if trace is None else trace
    if want_trace:
        trace_path = out / TRACE_FILENAME
        trace_path.write_text(
            "\n".join(
                trace_jsonl_lines(rec.tracer.spans, rec.tracer.dropped)
            )
            + "\n"
        )
        paths["trace"] = trace_path
    return paths
