"""Statistical regression detection over the run ledger.

Given the newest :class:`~repro.obs.timeline.RunRecord` for a grid
fingerprint and a window of earlier runs of the *same* fingerprint,
:func:`compare` runs four independent checks and returns a
:class:`DriftReport` of structured findings:

* **kill rate** — the observed kills-per-instance against the pooled
  baseline rate, as an exact binomial: the standardized residual
  ``z = (k - n·p) / sqrt(n·p·(1-p))`` must stay within ``±sigma``
  (default 6, matching the tensor backend's statistical-equivalence
  contract in :mod:`repro.backends.validate`).  Bit-identical re-runs
  give ``z = 0`` exactly, so the check has zero false positives on
  deterministic backends by construction.  A two-sided exact binomial
  p-value accompanies every finding as supporting evidence.
* **killed units** — the fraction of units with at least one kill
  (the quantity behind the paper's mutation score), tested the same
  way; catches bugs that concentrate or spread kills without moving
  the total much.
* **latency changepoint** — median/p90/mean of the
  ``repro_campaign_unit_seconds`` distribution (and of each BENCH
  stage, for bench records) against the merged baseline histograms.
  Because timing is noisy where kill counts are not, a regression
  needs at least two of the three statistics above
  ``baseline × (1 + threshold)`` (default 0.2, i.e. a 20% slowdown).
* **cache hit rate** — the pooled ``repro_cache_events_total``
  hit fraction; flags an absolute drop beyond ``cache_drop``
  (default 0.1) once enough lookups exist to mean anything.

Everything is stdlib arithmetic (``math.lgamma`` for exact binomial
tail sums; a continuity-corrected normal approximation takes over for
very large counts) — no scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.bench import histogram_summary
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.timeline import Ledger, RunRecord, TimelineError

DEFAULT_WINDOW = 10
DEFAULT_SIGMA = 6.0
DEFAULT_LATENCY_THRESHOLD = 0.2
DEFAULT_CACHE_DROP = 0.1
#: Latency checks need this many observations on both sides.
MIN_LATENCY_COUNT = 8
#: Cache checks need this many pooled lookups on both sides.
MIN_CACHE_LOOKUPS = 20

UNIT_SECONDS_FAMILY = "repro_campaign_unit_seconds"
CACHE_EVENTS_FAMILY = "repro_cache_events_total"


# -- exact binomial machinery (stdlib only) ---------------------------------

def _log_binomial_pmf(k: int, n: int, p: float) -> float:
    if p <= 0.0:
        return 0.0 if k == 0 else -math.inf
    if p >= 1.0:
        return 0.0 if k == n else -math.inf
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def binomial_z(k: int, n: int, p: float) -> float:
    """Standardized residual of ``k`` successes in ``Bin(n, p)``."""
    if n <= 0:
        return 0.0
    if p <= 0.0 or p >= 1.0:
        expected = 0 if p <= 0.0 else n
        return 0.0 if k == expected else math.inf
    scale = math.sqrt(n * p * (1.0 - p))
    return (k - n * p) / scale if scale > 0 else 0.0


def binomial_two_sided_p(k: int, n: int, p: float) -> float:
    """Two-sided exact binomial p-value of ``k`` under ``Bin(n, p)``.

    Exact (sum of outcomes no more likely than ``k``) for n up to
    100k; beyond that a continuity-corrected normal approximation is
    both accurate and instant.
    """
    if n <= 0:
        return 1.0
    if p <= 0.0 or p >= 1.0:
        expected = 0 if p <= 0.0 else n
        return 1.0 if k == expected else 0.0
    if n > 100_000:
        z = abs(binomial_z(k, n, p))
        z = max(z - 0.5 / math.sqrt(n * p * (1.0 - p)), 0.0)
        return min(1.0, math.erfc(z / math.sqrt(2.0)))
    observed = _log_binomial_pmf(k, n, p)
    # Tiny tolerance keeps "equally likely" outcomes (the mirror
    # point) inside the sum despite float rounding.
    cutoff = observed + 1e-9
    total = 0.0
    for i in range(n + 1):
        if _log_binomial_pmf(i, n, p) <= cutoff:
            total += math.exp(_log_binomial_pmf(i, n, p))
    return min(1.0, total)


# -- findings ---------------------------------------------------------------

@dataclass
class Finding:
    """One confirmed regression (or drift) with its evidence."""

    check: str
    message: str
    observed: float
    expected: float
    z: Optional[float] = None
    p_value: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "check": self.check,
            "message": self.message,
            "observed": self.observed,
            "expected": self.expected,
        }
        if self.z is not None and math.isfinite(self.z):
            payload["z"] = round(self.z, 3)
        if self.p_value is not None:
            payload["p_value"] = self.p_value
        if self.details:
            payload["details"] = self.details
        return payload


@dataclass
class DriftReport:
    """The verdict of one newest-vs-baseline comparison."""

    fingerprint: str
    run_utc: float
    baseline_runs: int
    findings: List[Finding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "run_utc": self.run_utc,
            "baseline_runs": self.baseline_runs,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        lines = [
            f"drift check  fp={self.fingerprint}  "
            f"baseline={self.baseline_runs} run(s)"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.ok:
            lines.append("  OK — no drift detected")
            return "\n".join(lines)
        for finding in self.findings:
            evidence = []
            if finding.z is not None and math.isfinite(finding.z):
                evidence.append(f"z={finding.z:+.2f}")
            if finding.p_value is not None:
                evidence.append(f"p={finding.p_value:.3g}")
            suffix = f"  [{', '.join(evidence)}]" if evidence else ""
            lines.append(
                f"  REGRESSION [{finding.check}] "
                f"{finding.message}{suffix}"
            )
        return "\n".join(lines)


# -- the checks -------------------------------------------------------------

def _registry_from(snapshot: Optional[Dict[str, Any]]) -> MetricsRegistry:
    registry = MetricsRegistry()
    if snapshot:
        registry.merge(snapshot)
    return registry


def _pooled_registry(records: Sequence[RunRecord]) -> MetricsRegistry:
    return merge_snapshots(
        [r.metrics for r in records if r.metrics]
    )


def _binomial_check(
    check: str,
    what: str,
    k: int,
    n: int,
    base_k: int,
    base_n: int,
    sigma: float,
) -> Optional[Finding]:
    if n <= 0 or base_n <= 0:
        return None
    p = base_k / base_n
    z = binomial_z(k, n, p)
    if abs(z) <= sigma:
        return None
    return Finding(
        check=check,
        message=(
            f"{what} {k}/{n} ({k / n:.4%}) drifted from the pooled "
            f"baseline {base_k}/{base_n} ({p:.4%})"
        ),
        observed=k / n,
        expected=p,
        z=z,
        p_value=binomial_two_sided_p(k, n, p),
        details={"k": k, "n": n, "baseline_k": base_k,
                 "baseline_n": base_n, "sigma": sigma},
    )


def _latency_check(
    check: str,
    what: str,
    observed: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
) -> Optional[Finding]:
    if (
        observed.get("count", 0) < MIN_LATENCY_COUNT
        or baseline.get("count", 0) < MIN_LATENCY_COUNT
    ):
        return None
    slow = {}
    for stat in ("median", "p90", "mean"):
        base = baseline.get(stat, 0.0)
        seen = observed.get(stat, 0.0)
        if base > 0 and seen > base * (1.0 + threshold):
            slow[stat] = round(seen / base, 3)
    if len(slow) < 2:
        return None
    base_median = baseline.get("median", 0.0)
    seen_median = observed.get("median", 0.0)
    ratio = seen_median / base_median if base_median > 0 else math.inf
    return Finding(
        check=check,
        message=(
            f"{what} slowed beyond the {threshold:.0%} changepoint: "
            f"median {seen_median:.6f}s vs baseline "
            f"{base_median:.6f}s ({ratio:.2f}x); "
            f"{len(slow)}/3 statistics regressed"
        ),
        observed=seen_median,
        expected=base_median,
        details={
            "threshold": threshold,
            "regressed": slow,
            "observed_stats": observed,
            "baseline_stats": baseline,
        },
    )


def _cache_totals(registry: MetricsRegistry) -> Dict[str, float]:
    totals = {"hit": 0.0, "miss": 0.0}
    for entry in registry.snapshot()["counters"]:
        if entry["name"] != CACHE_EVENTS_FAMILY:
            continue
        event = entry["labels"].get("event")
        if event in totals:
            totals[event] += entry["value"]
    return totals


def _cache_check(
    observed: MetricsRegistry,
    baseline: MetricsRegistry,
    cache_drop: float,
) -> Optional[Finding]:
    seen = _cache_totals(observed)
    base = _cache_totals(baseline)
    seen_n = seen["hit"] + seen["miss"]
    base_n = base["hit"] + base["miss"]
    if seen_n < MIN_CACHE_LOOKUPS or base_n < MIN_CACHE_LOOKUPS:
        return None
    seen_rate = seen["hit"] / seen_n
    base_rate = base["hit"] / base_n
    if seen_rate >= base_rate - cache_drop:
        return None
    return Finding(
        check="cache_hit_rate",
        message=(
            f"cache hit rate fell to {seen_rate:.1%} from the pooled "
            f"baseline {base_rate:.1%} "
            f"(drop > {cache_drop:.0%} absolute)"
        ),
        observed=seen_rate,
        expected=base_rate,
        details={"observed": seen, "baseline": base,
                 "cache_drop": cache_drop},
    )


def compare(
    record: RunRecord,
    baselines: Sequence[RunRecord],
    sigma: float = DEFAULT_SIGMA,
    latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
    cache_drop: float = DEFAULT_CACHE_DROP,
) -> DriftReport:
    """Run every applicable check of ``record`` against its window."""
    report = DriftReport(
        fingerprint=record.fingerprint,
        run_utc=record.utc,
        baseline_runs=len(baselines),
    )
    baselines = [
        b for b in baselines if b.fingerprint == record.fingerprint
    ]
    if len(baselines) != report.baseline_runs:
        raise TimelineError(
            "baseline window contains records of a different "
            "fingerprint — drift comparison is only defined over "
            "identical grids"
        )
    if not baselines:
        report.notes.append(
            "no baseline runs for this fingerprint yet — nothing to "
            "compare against"
        )
        return report

    # Kill-rate and killed-unit drift (exact binomial, overall and
    # per environment kind).
    finding = _binomial_check(
        "kill_rate", "kills", record.kills, record.instances,
        sum(b.kills for b in baselines),
        sum(b.instances for b in baselines),
        sigma,
    )
    if finding:
        report.findings.append(finding)
    finding = _binomial_check(
        "killed_units", "killed units",
        record.killed_units, record.units,
        sum(b.killed_units for b in baselines),
        sum(b.units for b in baselines),
        sigma,
    )
    if finding:
        report.findings.append(finding)
    for kind_name in sorted(record.kinds):
        bucket = record.kinds[kind_name]
        base_buckets = [
            b.kinds[kind_name] for b in baselines
            if kind_name in b.kinds
        ]
        if len(base_buckets) != len(baselines):
            continue
        finding = _binomial_check(
            "kill_rate", f"[{kind_name}] kills",
            bucket["kills"], bucket["instances"],
            sum(b["kills"] for b in base_buckets),
            sum(b["instances"] for b in base_buckets),
            sigma,
        )
        if finding:
            finding.details["environment_kind"] = kind_name
            report.findings.append(finding)

    # Warm-path latency changepoints.
    observed_reg = _registry_from(record.metrics)
    baseline_reg = _pooled_registry(baselines)
    if record.metrics:
        finding = _latency_check(
            "latency", "per-unit execution",
            histogram_summary(observed_reg, UNIT_SECONDS_FAMILY),
            histogram_summary(baseline_reg, UNIT_SECONDS_FAMILY),
            latency_threshold,
        )
        if finding:
            report.findings.append(finding)
        finding = _cache_check(
            observed_reg, baseline_reg, cache_drop
        )
        if finding:
            report.findings.append(finding)
    else:
        report.notes.append(
            "record carries no metrics snapshot — latency and cache "
            "checks skipped"
        )

    # BENCH stage changepoints (bench records only).
    if record.bench:
        base_stages = [b.bench for b in baselines if b.bench]
        for stage, summary in sorted(record.bench.items()):
            pooled = _pool_bench_stage(base_stages, stage)
            if pooled is None or not isinstance(summary, dict):
                continue
            finding = _latency_check(
                "bench_latency", f"bench stage '{stage}'",
                _coerce_stats(summary), pooled, latency_threshold,
            )
            if finding:
                finding.details["stage"] = stage
                report.findings.append(finding)
    return report


def _coerce_stats(summary: Dict[str, Any]) -> Dict[str, float]:
    stats: Dict[str, float] = {}
    for key in ("count", "median", "p90", "mean", "sum"):
        try:
            stats[key] = float(summary.get(key, 0.0))
        except (TypeError, ValueError):
            stats[key] = 0.0
    if "mean" not in summary and stats.get("count"):
        stats["mean"] = stats.get("sum", 0.0) / stats["count"]
    return stats


def _pool_bench_stage(
    stage_sets: Sequence[Dict[str, Any]], stage: str
) -> Optional[Dict[str, float]]:
    """Count-weighted pooling of one stage across baseline records.

    Medians and p90s don't pool exactly; the count-weighted average
    of per-run statistics is the standard changepoint baseline and is
    exact when the baseline runs are identical.
    """
    picked = [
        _coerce_stats(stages[stage])
        for stages in stage_sets
        if isinstance(stages, dict)
        and isinstance(stages.get(stage), dict)
    ]
    picked = [p for p in picked if p.get("count", 0) > 0]
    if not picked:
        return None
    total = sum(p["count"] for p in picked)
    pooled = {"count": total}
    for stat in ("median", "p90", "mean"):
        pooled[stat] = (
            sum(p[stat] * p["count"] for p in picked) / total
        )
    return pooled


def check_run(
    ledger: Ledger,
    fingerprint: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    sigma: float = DEFAULT_SIGMA,
    latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
    cache_drop: float = DEFAULT_CACHE_DROP,
    kind: Optional[str] = None,
) -> DriftReport:
    """Compare a ledger's newest run against its baseline window.

    With no ``fingerprint``, checks the most recently appended record
    across the whole ledger.
    """
    if fingerprint is None:
        newest: Optional[RunRecord] = None
        for fp in ledger.fingerprints():
            candidate = ledger.latest(fp, kind=kind)
            if candidate and (
                newest is None or candidate.utc > newest.utc
            ):
                newest = candidate
        if newest is None:
            raise TimelineError(
                f"{ledger.root}: ledger has no runs to check"
            )
        fingerprint = newest.fingerprint
    record = ledger.latest(fingerprint, kind=kind)
    if record is None:
        raise TimelineError(
            f"{ledger.root}: no runs recorded for fingerprint "
            f"{fingerprint}"
        )
    baselines = ledger.baseline(
        fingerprint, window=window, kind=kind,
        before_utc=None,
    )
    # `baseline` drops the newest record positionally; when utc
    # collisions occur the sort is stable, so this stays correct.
    return compare(
        record,
        baselines,
        sigma=sigma,
        latency_threshold=latency_threshold,
        cache_drop=cache_drop,
    )


def diff_runs(
    record: RunRecord, baseline: RunRecord
) -> Dict[str, Any]:
    """A metric-by-metric delta between two runs (no verdicts)."""
    payload: Dict[str, Any] = {
        "fingerprint": record.fingerprint,
        "runs": {
            "observed": record.utc,
            "baseline": baseline.utc,
        },
        "kill_rate": {
            "observed": record.kill_rate,
            "baseline": baseline.kill_rate,
            "delta": record.kill_rate - baseline.kill_rate,
        },
        "killed_fraction": {
            "observed": record.killed_fraction,
            "baseline": baseline.killed_fraction,
            "delta": (
                record.killed_fraction - baseline.killed_fraction
            ),
        },
        "wall_seconds": {
            "observed": record.wall_seconds,
            "baseline": baseline.wall_seconds,
            "delta": record.wall_seconds - baseline.wall_seconds,
        },
    }
    if record.metrics and baseline.metrics:
        observed = histogram_summary(
            _registry_from(record.metrics), UNIT_SECONDS_FAMILY
        )
        base = histogram_summary(
            _registry_from(baseline.metrics), UNIT_SECONDS_FAMILY
        )
        payload["unit_seconds"] = {
            "observed": observed, "baseline": base,
        }
    if record.bench and baseline.bench:
        stages = {}
        for stage in sorted(
            set(record.bench) & set(baseline.bench)
        ):
            stages[stage] = {
                "observed": record.bench[stage],
                "baseline": baseline.bench[stage],
            }
        payload["bench"] = stages
    return payload
