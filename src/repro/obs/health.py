"""Live campaign health: stragglers and mid-run kill-rate drift.

A :class:`HealthMonitor` watches a campaign *while it runs* — the
ledger/detector pair (:mod:`repro.obs.timeline`,
:mod:`repro.obs.drift`) only speaks after the run is over.  The
scheduler feeds it every completed unit; the service feeds it every
absorbed shard and forwards flagged events to SSE subscribers.

Two checks:

* **stragglers** — a unit whose wall time exceeds ``factor`` × the
  running ``quantile`` of all units seen so far (a per-campaign
  histogram, so the threshold adapts to the grid instead of being a
  magic constant).  Flagging starts only after ``min_units``
  observations, so cold-start noise never fires.
* **kill drift** — two modes, best first:

  - *prefix-exact*: when the ledger baseline carries per-unit kill
    detail (``RunRecord.units_detail``), the cumulative kills are
    compared against the baseline's expectation *for exactly the
    units completed so far*.  On a seeded identical re-run the
    residual is exactly zero at every prefix — unit ordering cannot
    produce a false positive — and a genuinely drifted unit moves
    the residual immediately.
  - *pooled fallback*: with only pooled baseline totals, the
    cumulative rate is z-tested against the pooled expectation.
    Units run grouped by kind/test, so the partial rate legitimately
    wanders around the pooled value on a healthy run; the fallback
    therefore additionally requires the observed rate to diverge by
    at least ``drift_min_ratio`` × (in either direction) and is
    best-effort by design.

  Either way the flag latches: one structured event when drift is
  first confirmed, not one per shard.

Flags are delivered three ways at once: appended to the monitor's
bounded event list (for ``summary()`` / the service's job status),
pushed through an optional ``emit`` callback (the service publishes
these on the SSE stream), and counted on the process recorder as
``repro_obs_health_total{kind=...}`` named events.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.drift import binomial_z
from repro.obs.recorder import recorder
from repro.obs.registry import DEFAULT_TIME_BUCKETS, Histogram

HEALTH_METRIC = "repro_obs_health_total"
#: Event kinds a monitor can flag; materialized at zero on the
#: recorder so dashboards see the family even when nothing fired.
HEALTH_KINDS = ("straggler", "kill_drift")


@dataclass
class HealthConfig:
    """Thresholds for live monitoring (all adaptive checks)."""

    straggler_quantile: float = 0.9
    straggler_factor: float = 4.0
    min_units: int = 20
    drift_sigma: float = 6.0
    #: Minimum multiplicative divergence (either direction) before a
    #: statistically-significant cumulative rate counts as drift —
    #: the ordering-noise guard described in the module docstring.
    drift_min_ratio: float = 2.0
    min_instances: int = 1000
    event_capacity: int = 256


class HealthMonitor:
    """Streaming health checks for one running campaign."""

    def __init__(
        self,
        expected_kill_rate: Optional[float] = None,
        config: Optional[HealthConfig] = None,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
        expected_units: Optional[Dict[int, List[float]]] = None,
    ) -> None:
        self.config = config or HealthConfig()
        self.expected_kill_rate = expected_kill_rate
        #: unit index -> [mean kills, instances] from the baseline
        #: window; enables the prefix-exact drift mode.
        self.expected_units = expected_units
        self._expected_kills = 0.0
        self._expected_variance = 0.0
        self._emit = emit
        self._durations = Histogram(DEFAULT_TIME_BUCKETS)
        self.units = 0
        self.kills = 0
        self.instances = 0
        self.stragglers = 0
        self.drift_flagged = False
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        rec = recorder()
        if rec.enabled:
            for kind in HEALTH_KINDS:
                rec.counter_inc(HEALTH_METRIC, 0, {"kind": kind})

    # -- feeding -----------------------------------------------------------

    def observe_unit(
        self,
        elapsed: float,
        worker: Optional[str] = None,
        unit: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Record one completed unit; returns a straggler flag or
        ``None``."""
        flag = None
        cfg = self.config
        if self.units >= cfg.min_units:
            threshold = (
                self._durations.quantile(cfg.straggler_quantile)
                * cfg.straggler_factor
            )
            if threshold > 0 and elapsed > threshold:
                self.stragglers += 1
                flag = self._flag(
                    "straggler",
                    elapsed=round(elapsed, 6),
                    threshold=round(threshold, 6),
                    quantile=cfg.straggler_quantile,
                    factor=cfg.straggler_factor,
                    worker=worker,
                    unit=unit,
                )
        self._durations.observe(elapsed)
        self.units += 1
        return flag

    def observe_kills(
        self, kills: int, instances: int, unit: Optional[int] = None
    ) -> Optional[Dict[str, Any]]:
        """Accumulate kill totals; returns a drift flag the first
        time the cumulative residual leaves the expected band.

        ``unit`` is the global unit index — with per-unit baseline
        expectations it selects the prefix-exact mode.
        """
        self.kills += kills
        self.instances += instances
        expected_unit = None
        if self.expected_units is not None and unit is not None:
            expected_unit = self.expected_units.get(unit)
        if expected_unit is not None:
            mean_kills, unit_instances = expected_unit
            self._expected_kills += mean_kills
            if unit_instances > 0:
                p = min(max(mean_kills / unit_instances, 0.0), 1.0)
                self._expected_variance += (
                    unit_instances * p * (1.0 - p)
                )
        if (
            self.drift_flagged
            or self.instances < self.config.min_instances
        ):
            return None
        if self.expected_units is not None:
            if self._expected_kills <= 0 and self.kills == 0:
                return None
            z = (self.kills - self._expected_kills) / math.sqrt(
                max(self._expected_variance, 1.0)
            )
            if abs(z) <= self.config.drift_sigma:
                return None
            self.drift_flagged = True
            return self._flag(
                "kill_drift",
                mode="prefix",
                kills=self.kills,
                instances=self.instances,
                expected_kills=round(self._expected_kills, 3),
                observed_rate=round(
                    self.kills / self.instances, 6
                ),
                expected_rate=round(
                    self._expected_kills / self.instances, 6
                ),
                z=round(z, 3),
                sigma=self.config.drift_sigma,
            )
        if self.expected_kill_rate is None:
            return None
        z = binomial_z(
            self.kills, self.instances, self.expected_kill_rate
        )
        if abs(z) <= self.config.drift_sigma:
            return None
        observed = self.kills / self.instances
        expected = self.expected_kill_rate
        ratio = self.config.drift_min_ratio
        if expected > 0 and (
            observed <= expected * ratio
            and observed * ratio >= expected
        ):
            return None
        self.drift_flagged = True
        return self._flag(
            "kill_drift",
            mode="pooled",
            kills=self.kills,
            instances=self.instances,
            observed_rate=round(self.kills / self.instances, 6),
            expected_rate=self.expected_kill_rate,
            z=round(z, 3),
            sigma=self.config.drift_sigma,
        )

    # -- reporting ---------------------------------------------------------

    def _flag(self, kind: str, **details: Any) -> Dict[str, Any]:
        event = {
            "kind": kind,
            "utc": time.time(),
            **{k: v for k, v in details.items() if v is not None},
        }
        if len(self.events) < self.config.event_capacity:
            self.events.append(event)
        else:
            self.dropped_events += 1
        rec = recorder()
        if rec.enabled:
            rec.counter_inc(HEALTH_METRIC, 1, {"kind": kind})
            rec.event(f"obs.health.{kind}", **details)
        if self._emit is not None:
            try:
                self._emit(event)
            except Exception:
                # Health reporting must never take the campaign down.
                pass
        return event

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "units": self.units,
            "stragglers": self.stragglers,
            "kill_drift": self.drift_flagged,
            "kills": self.kills,
            "instances": self.instances,
            "events": self.events[-10:],
            "dropped_events": self.dropped_events,
        }
        if self.expected_kill_rate is not None:
            payload["expected_kill_rate"] = self.expected_kill_rate
            if self.instances:
                payload["observed_kill_rate"] = round(
                    self.kills / self.instances, 6
                )
        if self.units:
            payload["unit_seconds_p90"] = round(
                self._durations.quantile(0.9), 6
            )
        return payload


def expected_rate_from_baseline(
    baselines: List[Any],
) -> Optional[float]:
    """Pooled kill rate of a ledger baseline window, or ``None``."""
    instances = sum(b.instances for b in baselines)
    kills = sum(b.kills for b in baselines)
    if instances <= 0:
        return None
    return kills / instances


def expected_units_from_baseline(
    baselines: List[Any],
) -> Optional[Dict[int, List[float]]]:
    """Per-unit ``[mean kills, instances]`` expectations, or ``None``.

    Built from the baseline records that carry ``units_detail`` of one
    consistent length (records from a different grid shape are
    skipped); kills are averaged across the window.
    """
    detailed = [
        b.units_detail
        for b in baselines
        if getattr(b, "units_detail", None)
    ]
    if not detailed:
        return None
    length = len(detailed[0])
    detailed = [d for d in detailed if len(d) == length]
    expected: Dict[int, List[float]] = {}
    for index in range(length):
        kills = [float(d[index][0]) for d in detailed]
        instances = [int(d[index][1]) for d in detailed]
        expected[index] = [
            sum(kills) / len(detailed),
            max(instances),
        ]
    return expected
