"""The span tracer: nested wall/CPU-time spans with a bounded buffer.

A span is one timed region with a name, a ``/``-joined *path* (the
chain of enclosing span names, which survives cross-process merging
and is what the profile report aggregates on), attributes, wall and
CPU durations, and a start offset relative to the tracer's epoch.

The buffer is **bounded and drops deterministically**: once
``capacity`` spans are recorded, later spans are counted in
``dropped`` and discarded — the kept set depends only on completion
order, never on timing, so two identical runs keep identical spans.
Sampling is likewise deterministic: with ``sample=n``, every n-th
*top-level* span (and its whole subtree) records, the rest are
skipped wholesale.

Worker processes drain their spans (:meth:`Tracer.drain`) and the
scheduler absorbs them (:meth:`Tracer.absorb`) through the same
channel that ships metric snapshots.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.registry import ObsError

SPAN_SCHEMA = 1


class _SpanHandle:
    """Context manager for one open span."""

    __slots__ = ("_tracer", "name", "attrs", "_wall0", "_cpu0", "_recording")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        recording: bool,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._recording = recording
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._tracer._stack.append(self.name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        if self._recording:
            tracer._record(
                {
                    "name": self.name,
                    "path": path,
                    "attrs": self.attrs,
                    "start": round(self._wall0 - tracer._epoch, 6),
                    "wall": wall,
                    "cpu": cpu,
                    "depth": len(tracer._stack),
                    "seq": tracer._next_seq(),
                }
            )


class Tracer:
    """Bounded, deterministic span recording for one process."""

    def __init__(self, capacity: int = 4096, sample: int = 1) -> None:
        if capacity < 1:
            raise ObsError("tracer capacity must be >= 1")
        if sample < 1:
            raise ObsError("tracer sample must be >= 1")
        self.capacity = capacity
        self.sample = sample
        self.dropped = 0
        #: Local drops only, never drained away — see
        #: ``EventLog.lifetime_dropped``.
        self.lifetime_dropped = 0
        self._spans: List[Dict[str, Any]] = []
        self._stack: List[str] = []
        self._seq = 0
        self._top_seen = 0
        self._subtree_recording = True
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        if not self._stack:
            # Sampling decision is made once per top-level span and
            # inherited by the whole subtree.
            self._subtree_recording = self._top_seen % self.sample == 0
            self._top_seen += 1
        return _SpanHandle(self, name, attrs, self._subtree_recording)

    def _record(self, span: Dict[str, Any]) -> None:
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            self.lifetime_dropped += 1
            return
        self._spans.append(span)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- access / shipping -------------------------------------------------

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._spans)

    def drain(self) -> Dict[str, Any]:
        """Ship-and-reset: spans out, buffer emptied, dropped carried."""
        payload = {
            "schema": SPAN_SCHEMA,
            "spans": self._spans,
            "dropped": self.dropped,
        }
        self._spans = []
        self.dropped = 0
        return payload

    def absorb(
        self,
        payload: Optional[Dict[str, Any]],
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Merge a drained payload (e.g. from a worker process).

        Absorbed spans respect this tracer's capacity with the same
        deterministic keep-earliest/drop-later rule as local spans.
        """
        if not payload:
            return
        self.dropped += payload.get("dropped", 0)
        for span in payload.get("spans", ()):
            if extra_attrs:
                span = dict(span)
                span["attrs"] = {**span.get("attrs", {}), **extra_attrs}
            self._record(span)

    def reset(self) -> None:
        self._spans = []
        self._stack = []
        self.dropped = 0
        self.lifetime_dropped = 0
        self._seq = 0
        self._top_seen = 0
        self._epoch = time.perf_counter()


def aggregate_spans(
    spans: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Per-path aggregates: count, total/self wall, cpu, durations.

    Self time is total wall minus the wall of *direct* children (paths
    one level deeper), the quantity the hot-path report ranks by.
    """
    aggregates: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        path = span["path"]
        entry = aggregates.get(path)
        if entry is None:
            entry = aggregates[path] = {
                "path": path,
                "name": span["name"],
                "count": 0,
                "wall": 0.0,
                "cpu": 0.0,
                "child_wall": 0.0,
                "durations": [],
            }
        entry["count"] += 1
        entry["wall"] += span["wall"]
        entry["cpu"] += span["cpu"]
        entry["durations"].append(span["wall"])
    for path, entry in aggregates.items():
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None and parent in aggregates:
            aggregates[parent]["child_wall"] += entry["wall"]
    for entry in aggregates.values():
        entry["self_wall"] = max(0.0, entry["wall"] - entry["child_wall"])
        entry["durations"].sort()
    return aggregates


def hot_path(
    aggregates: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The chain of heaviest spans from the heaviest root down."""
    roots = [
        entry for path, entry in aggregates.items() if "/" not in path
    ]
    if not roots:
        return []
    chain: List[Dict[str, Any]] = []
    current = max(roots, key=lambda entry: entry["wall"])
    while True:
        chain.append(current)
        prefix = current["path"] + "/"
        children = [
            entry
            for path, entry in aggregates.items()
            if path.startswith(prefix)
            and "/" not in path[len(prefix):]
        ]
        if not children:
            return chain
        current = max(children, key=lambda entry: entry["wall"])
