"""The structured event log: named lifecycle events with attributes.

Events are for *discrete occurrences* the metrics layer would flatten
into a number: a unit retried, a SIGALRM deadline fired, the pool
degraded to serial, a synthesis candidate was dropped at its oracle
deadline.  Each event carries a name, arbitrary attributes, and an
absolute UTC timestamp (so journals and exported metrics correlate
across resumed runs).

The log is bounded like the span buffer — keep-earliest, count the
rest in ``dropped`` — and ships through the same drain/absorb channel
as metric snapshots, so worker events surface at the scheduler.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.registry import ObsError

EVENT_SCHEMA = 1


class EventLog:
    """Bounded, mergeable list of structured events."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ObsError("event log capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        #: Drops that happened *locally* in this process, never
        #: reset by drain and never inflated by absorb — the basis
        #: of the exactly-once ``repro_obs_dropped_total`` counter.
        self.lifetime_dropped = 0
        self._events: List[Dict[str, Any]] = []

    def emit(self, name: str, **attrs: Any) -> None:
        self._append({
            "name": name,
            "attrs": attrs,
            "utc": time.time(),
        })

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.capacity:
            self.dropped += 1
            self.lifetime_dropped += 1
            return
        self._events.append(event)

    # -- access / shipping -------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._events)

    def counts(self) -> Dict[str, int]:
        """Occurrences per event name (for the report)."""
        totals: Dict[str, int] = {}
        for event in self._events:
            totals[event["name"]] = totals.get(event["name"], 0) + 1
        return totals

    def drain(self) -> Dict[str, Any]:
        payload = {
            "schema": EVENT_SCHEMA,
            "events": self._events,
            "dropped": self.dropped,
        }
        self._events = []
        self.dropped = 0
        return payload

    def absorb(
        self,
        payload: Optional[Dict[str, Any]],
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not payload:
            return
        self.dropped += payload.get("dropped", 0)
        for event in payload.get("events", ()):
            if extra_attrs:
                event = dict(event)
                event["attrs"] = {**event.get("attrs", {}), **extra_attrs}
            self._append(event)

    def reset(self) -> None:
        self._events = []
        self.dropped = 0
        self.lifetime_dropped = 0
