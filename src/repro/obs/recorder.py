"""The recorder facade and the zero-cost disabled path.

Every instrumented call site in the codebase talks to *the process
recorder* — ``repro.obs.recorder()`` — which is one of two things:

* a :class:`NullRecorder` (the default): every method is an empty
  no-op, ``span()`` returns one shared do-nothing context manager,
  nothing is allocated.  This is the zero-cost-when-disabled
  guarantee; ``scripts/bench_obs_overhead.py`` measures it against a
  <2% bar on a real grid.
* a :class:`Recorder`: a metrics registry + span tracer + event log,
  installed by :func:`enable` (the CLI's ``--metrics-out``/``--trace``
  flags) or by :func:`configure` in campaign worker processes, which
  receive the scheduler's recorder configuration through the pool
  initializer and ship drained snapshots back with each shard.

Call sites therefore never check a flag; they call
``obs.recorder().counter_inc(...)`` and the dispatch does the rest.
Hot loops that want to skip even argument construction may guard on
``recorder().enabled``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

CONFIG_SCHEMA = 1
#: Bounded-buffer truncation, visible instead of silent: one counter
#: per buffer kind, materialized at zero on every drain/export.
DROP_METRIC = "repro_obs_dropped_total"


class _NullSpan:
    """The shared do-nothing context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Every instrumented call site's target when obs is disabled."""

    enabled = False
    trace = False

    __slots__ = ()

    def counter_inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        return None

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        return None

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def drain(self) -> Optional[Dict[str, Any]]:
        return None

    def publish_drop_counters(self) -> None:
        return None

    def absorb(
        self,
        payload: Optional[Dict[str, Any]],
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        return None

    def config_payload(self) -> Optional[Dict[str, Any]]:
        return None


class Recorder(NullRecorder):
    """Metrics + spans + events for one process."""

    enabled = True

    __slots__ = (
        "registry", "tracer", "events", "trace",
        "span_capacity", "event_capacity", "trace_sample",
        "_drops_published",
    )

    def __init__(
        self,
        trace: bool = False,
        span_capacity: int = 4096,
        event_capacity: int = 4096,
        trace_sample: int = 1,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=span_capacity, sample=trace_sample)
        self.events = EventLog(capacity=event_capacity)
        self.trace = trace
        self.span_capacity = span_capacity
        self.event_capacity = event_capacity
        self.trace_sample = trace_sample
        self._drops_published = {"events": 0, "spans": 0}

    # -- metrics -----------------------------------------------------------

    def counter_inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.registry.counter(name, labels).inc(amount)

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.registry.gauge(name, labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.registry.histogram(name, labels, buckets).observe(value)

    # -- spans / events ----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        if not self.trace:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A counted, named lifecycle event.

        Every event both lands in the bounded event log (with its
        attributes and UTC timestamp) and increments the
        ``repro_events_total{event=...}`` counter, so event *counts*
        survive even when the log itself overflows.
        """
        self.registry.counter("repro_events_total", {"event": name}).inc()
        self.events.emit(name, **attrs)

    # -- shipping ----------------------------------------------------------

    def publish_drop_counters(self) -> None:
        """Materialize ``repro_obs_dropped_total{kind}`` counters.

        Publishes only drops that happened *locally* and weren't
        published before (lifetime counters, not the drain-reset
        ones), so counts ship upstream exactly once through the
        normal drain/merge channel — a parent that absorbs a worker
        payload never double-counts the worker's drops.
        """
        for kind, lifetime in (
            ("events", self.events.lifetime_dropped),
            ("spans", self.tracer.lifetime_dropped),
        ):
            delta = max(lifetime - self._drops_published[kind], 0)
            self.registry.counter(
                DROP_METRIC, {"kind": kind}
            ).inc(delta)
            self._drops_published[kind] = lifetime

    def drain(self) -> Dict[str, Any]:
        """Everything since the last drain, as one picklable payload."""
        self.publish_drop_counters()
        return {
            "schema": CONFIG_SCHEMA,
            "metrics": self.registry.drain(),
            "spans": self.tracer.drain(),
            "events": self.events.drain(),
        }

    def absorb(
        self,
        payload: Optional[Dict[str, Any]],
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Merge a drained payload from another process."""
        if not payload:
            return
        self.registry.merge(payload.get("metrics"))
        self.tracer.absorb(payload.get("spans"), extra_attrs)
        self.events.absorb(payload.get("events"), extra_attrs)

    def config_payload(self) -> Dict[str, Any]:
        """How to build an equivalent recorder in a worker process."""
        return {
            "schema": CONFIG_SCHEMA,
            "trace": self.trace,
            "span_capacity": self.span_capacity,
            "event_capacity": self.event_capacity,
            "trace_sample": self.trace_sample,
        }


# -- the process recorder ------------------------------------------------------

_NULL = NullRecorder()
_RECORDER: NullRecorder = _NULL


def recorder() -> NullRecorder:
    """The process recorder every instrumented call site dispatches to."""
    return _RECORDER


def set_recorder(instance: NullRecorder) -> NullRecorder:
    global _RECORDER
    _RECORDER = instance
    return instance


def enable(
    trace: bool = False,
    span_capacity: int = 4096,
    event_capacity: int = 4096,
    trace_sample: int = 1,
) -> Recorder:
    """Install (and return) a live recorder for this process."""
    return set_recorder(
        Recorder(
            trace=trace,
            span_capacity=span_capacity,
            event_capacity=event_capacity,
            trace_sample=trace_sample,
        )
    )


def disable() -> None:
    """Back to the no-op recorder (the default state)."""
    set_recorder(_NULL)


def is_enabled() -> bool:
    return _RECORDER.enabled


def configure(payload: Optional[Mapping[str, Any]]) -> NullRecorder:
    """Recreate a recorder from :meth:`Recorder.config_payload`.

    Campaign workers call this in the pool initializer: ``None`` (obs
    disabled at the scheduler) keeps the no-op recorder, anything else
    builds a live one with the scheduler's settings.
    """
    if not payload:
        disable()
        return _RECORDER
    return enable(
        trace=bool(payload.get("trace", False)),
        span_capacity=int(payload.get("span_capacity", 4096)),
        event_capacity=int(payload.get("event_capacity", 4096)),
        trace_sample=int(payload.get("trace_sample", 1)),
    )
