"""Publishing memo/oracle-cache counters into the metrics registry.

The oracle cache (:mod:`repro.env.runner`) and the vectorized
backend's probability/jitter/run memos keep their own cumulative
hit/miss/eviction counters — cheap, always on, and untouched by this
layer.  What the obs layer adds is *publication*: at natural flush
points (end of a grid, end of a shard) the deltas since the previous
publish are folded into the registry as
``repro_cache_events_total{cache=...,event=...}`` counters, plus a
``repro_cache_hit_rate`` histogram observation per cache per publish,
so campaign artifacts carry memoization effectiveness per worker
without a single extra dispatch on the per-lookup hot path.

Delta tracking lives here (module state, per process) so publishing
composes with registry drains: each delta is incremented exactly once
no matter how often snapshots ship.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.obs.recorder import NullRecorder, recorder
from repro.obs.registry import RATE_BUCKETS

CACHE_EVENTS_METRIC = "repro_cache_events_total"
CACHE_HIT_RATE_METRIC = "repro_cache_hit_rate"
CACHE_SIZE_METRIC = "repro_cache_size"

#: (cache name) -> counters at the previous publish.
_LAST: Dict[str, Tuple[int, int, int]] = {}


def _publish_cache(
    rec: NullRecorder,
    cache: str,
    hits: int,
    misses: int,
    evictions: int,
    size: int,
) -> None:
    last_hits, last_misses, last_evictions = _LAST.get(cache, (0, 0, 0))
    delta_hits = hits - last_hits
    delta_misses = misses - last_misses
    delta_evictions = evictions - last_evictions
    if delta_hits < 0 or delta_misses < 0 or delta_evictions < 0:
        # The underlying cache was reset since the last publish; its
        # counters restarted from zero, so the full current values are
        # the delta.
        delta_hits, delta_misses, delta_evictions = (
            hits, misses, evictions,
        )
    _LAST[cache] = (hits, misses, evictions)
    # Zero deltas still materialise the counters: an exported artifact
    # should show "oracle cache: 0 lookups" explicitly, not omit the
    # family (and a pre-declared zero counter is Prometheus idiom).
    rec.counter_inc(
        CACHE_EVENTS_METRIC, delta_hits,
        {"cache": cache, "event": "hit"},
    )
    rec.counter_inc(
        CACHE_EVENTS_METRIC, delta_misses,
        {"cache": cache, "event": "miss"},
    )
    rec.counter_inc(
        CACHE_EVENTS_METRIC, delta_evictions,
        {"cache": cache, "event": "eviction"},
    )
    lookups = delta_hits + delta_misses
    if lookups:
        rec.observe(
            CACHE_HIT_RATE_METRIC,
            delta_hits / lookups,
            {"cache": cache},
            buckets=RATE_BUCKETS,
        )
    rec.gauge_set(CACHE_SIZE_METRIC, size, {"cache": cache})


def publish_cache_metrics() -> None:
    """Fold every cache's deltas into the process recorder.

    A no-op (beyond one ``enabled`` check) when obs is disabled.
    Imports are deliberately lazy and local: ``repro.obs`` must not
    depend on the layers it observes.
    """
    rec = recorder()
    if not rec.enabled:
        return
    from repro.env.runner import oracle_cache_stats

    oracle = oracle_cache_stats()
    _publish_cache(
        rec, "oracle", oracle.hits, oracle.misses, oracle.evictions,
        oracle.size,
    )
    from repro.backends.vectorized import (
        _JITTER_CACHE,
        _PROBABILITY_CACHE,
        _RUN_CACHE,
    )

    for cache_name, cache in (
        ("probability", _PROBABILITY_CACHE),
        ("jitter", _JITTER_CACHE),
        ("run", _RUN_CACHE),
    ):
        _publish_cache(
            rec, cache_name, cache.hits, cache.misses, cache.evictions,
            len(cache),
        )
    from repro.backends.tensor import (
        _GRID_CACHE,
        _JITTER_Z_CACHE,
        _KILLS_CACHE,
    )

    for cache_name, cache in (
        ("tensor_grid", _GRID_CACHE),
        ("tensor_kills", _KILLS_CACHE),
        ("tensor_jitter", _JITTER_Z_CACHE),
    ):
        _publish_cache(
            rec, cache_name, cache.hits, cache.misses, cache.evictions,
            len(cache),
        )


def reset_publisher() -> None:
    """Forget previous publishes (tests and cache resets)."""
    _LAST.clear()
