"""ASCII rendering: metric tables and the top-spans/hot-path profile.

``repro obs report`` feeds this module from exported artifacts; the
CLI's live runs feed it from the in-process recorder.  The profile is
the operator's answer to "where did the time go": spans aggregated by
path, ranked by *self* time (total minus direct children), plus the
chain of heaviest spans from the heaviest root — the hot path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import aggregate_spans, hot_path


def _table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Minimal fixed-width table (obs stays dependency-free)."""
    columns = list(zip(headers, *rows)) if rows else [
        (header,) for header in headers
    ]
    widths = [max(len(str(cell)) for cell in column) for column in columns]

    def render(cells: Sequence[str]) -> str:
        return " | ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 0.001:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_metrics(registry: MetricsRegistry) -> str:
    """Counters, gauges, and histogram summaries as ASCII tables."""
    sections: List[str] = []
    counter_rows = [
        [name, _labels_text(dict(labels)), f"{counter.value:g}"]
        for name, labels, counter in registry.iter_counters()
    ]
    if counter_rows:
        sections.append(
            _table(
                ["counter", "labels", "value"],
                counter_rows,
                title="counters",
            )
        )
    gauge_rows = [
        [name, _labels_text(dict(labels)), f"{gauge.value:g}"]
        for name, labels, gauge in registry.iter_gauges()
    ]
    if gauge_rows:
        sections.append(
            _table(
                ["gauge", "labels", "value"], gauge_rows, title="gauges"
            )
        )
    def _value(name: str, value: float) -> str:
        # Only *_seconds families are durations; rates and sizes
        # render as plain numbers.
        if "seconds" in name:
            return _seconds(value)
        return f"{value:.4g}"

    histogram_rows = [
        [
            name,
            _labels_text(dict(labels)),
            str(histogram.count),
            _value(name, histogram.mean),
            _value(name, histogram.quantile(0.5)),
            _value(name, histogram.quantile(0.9)),
            _value(name, histogram.max) if histogram.count else "-",
        ]
        for name, labels, histogram in registry.iter_histograms()
    ]
    if histogram_rows:
        sections.append(
            _table(
                ["histogram", "labels", "count", "mean", "p50", "p90",
                 "max"],
                histogram_rows,
                title="histograms",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def render_events(events_or_counts: Any) -> str:
    """Event occurrence counts, most frequent first."""
    if isinstance(events_or_counts, EventLog):
        counts = events_or_counts.counts()
    elif isinstance(events_or_counts, dict):
        counts = events_or_counts
    else:  # a raw list of event records (from metrics.jsonl)
        counts = {}
        for event in events_or_counts:
            counts[event["name"]] = counts.get(event["name"], 0) + 1
    if not counts:
        return "(no events recorded)"
    rows = [
        [name, str(count)]
        for name, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    return _table(["event", "count"], rows, title="events")


def _span_percentile(durations: List[float], q: float) -> float:
    if not durations:
        return 0.0
    index = min(len(durations) - 1, int(q * len(durations)))
    return durations[index]


def render_profile(
    spans: Sequence[Dict[str, Any]], top: int = 15
) -> str:
    """The "top spans / hot path" profile from raw span records."""
    if not spans:
        return "(no spans recorded — run with --trace)"
    aggregates = aggregate_spans(spans)
    total_wall = sum(
        entry["wall"]
        for path, entry in aggregates.items()
        if "/" not in path
    )
    ranked = sorted(
        aggregates.values(),
        key=lambda entry: entry["self_wall"],
        reverse=True,
    )[:top]
    rows = [
        [
            entry["path"],
            str(entry["count"]),
            _seconds(entry["wall"]),
            _seconds(entry["self_wall"]),
            (
                f"{100.0 * entry['self_wall'] / total_wall:.1f}%"
                if total_wall > 0
                else "-"
            ),
            _seconds(_span_percentile(entry["durations"], 0.5)),
            _seconds(_span_percentile(entry["durations"], 0.9)),
            _seconds(entry["cpu"]),
        ]
        for entry in ranked
    ]
    sections = [
        _table(
            ["span", "count", "total", "self", "self%", "p50", "p90",
             "cpu"],
            rows,
            title=f"top spans by self time ({len(spans)} spans, "
            f"{_seconds(total_wall)} traced)",
        )
    ]
    chain = hot_path(aggregates)
    if chain:
        lines = ["hot path:"]
        for depth, entry in enumerate(chain):
            share = (
                f" ({100.0 * entry['wall'] / total_wall:.1f}%)"
                if total_wall > 0
                else ""
            )
            lines.append(
                f"  {'  ' * depth}{entry['name']}: "
                f"{_seconds(entry['wall'])}{share} "
                f"x{entry['count']}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def render_report(
    registry: MetricsRegistry,
    events: Any = None,
    spans: Optional[Sequence[Dict[str, Any]]] = None,
    top: int = 15,
) -> str:
    """The full ``repro obs report`` output."""
    sections = [render_metrics(registry)]
    if events is not None:
        sections.append(render_events(events))
    if spans is not None:
        sections.append(render_profile(spans, top=top))
    return "\n\n".join(sections)
